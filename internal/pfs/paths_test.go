package pfs

import (
	"errors"
	"fmt"
	"reflect"
	"sort"
	"testing"

	"repro/internal/sim"
)

// newPathFS builds an FS with two classes for the path/metadata tests —
// the surface the object gateway's metadata tier leans on.
func newPathFS(t *testing.T) *FS {
	t.Helper()
	k := sim.NewKernel(1)
	io := newFakeIO("volA", "volB")
	fs, err := New(k, Config{
		IO:           io,
		Classes:      map[string]string{"default": "volA", "bulk": "volB"},
		DefaultClass: "default",
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return fs
}

func TestMkdirAllDeepAndIdempotent(t *testing.T) {
	fs := newPathFS(t)
	deep := "/gateway/t/alpha/b/photos/p"
	if err := fs.MkdirAll(deep); err != nil {
		t.Fatalf("MkdirAll(%q): %v", deep, err)
	}
	// Every intermediate directory must exist.
	for _, p := range []string{"/gateway", "/gateway/t", "/gateway/t/alpha", "/gateway/t/alpha/b", "/gateway/t/alpha/b/photos", deep} {
		ino, err := fs.Stat(p)
		if err != nil {
			t.Fatalf("Stat(%q): %v", p, err)
		}
		if !ino.Dir {
			t.Fatalf("Stat(%q): not a directory", p)
		}
	}
	// Idempotent: repeating must not error or duplicate.
	if err := fs.MkdirAll(deep); err != nil {
		t.Fatalf("MkdirAll twice: %v", err)
	}
	// Creating below an existing file must fail with ErrNotDir.
	if _, err := fs.Create("/gateway/t/alpha/obj", Policy{}); err != nil {
		t.Fatalf("Create: %v", err)
	}
	if err := fs.MkdirAll("/gateway/t/alpha/obj/sub"); err == nil {
		t.Fatalf("MkdirAll below a file succeeded")
	}
	// Relative and parent-escaping paths are rejected.
	if err := fs.MkdirAll("relative/path"); !errors.Is(err, ErrBadPath) {
		t.Fatalf("MkdirAll(relative) err = %v, want ErrBadPath", err)
	}
	if err := fs.MkdirAll("/a/../b"); !errors.Is(err, ErrBadPath) {
		t.Fatalf("MkdirAll(..) err = %v, want ErrBadPath", err)
	}
}

func TestListSortedOrderForPagination(t *testing.T) {
	fs := newPathFS(t)
	if err := fs.MkdirAll("/bucket"); err != nil {
		t.Fatalf("MkdirAll: %v", err)
	}
	// Create in deliberately non-lexical order.
	names := []string{"zeta", "alpha", "m/05", "m/01", "beta"}
	for _, n := range names {
		path := "/bucket/" + n
		if err := fs.MkdirAll(parentOf(path)); err != nil {
			t.Fatalf("MkdirAll(%q): %v", parentOf(path), err)
		}
		if _, err := fs.Create(path, Policy{}); err != nil {
			t.Fatalf("Create(%q): %v", path, err)
		}
	}
	got, err := fs.List("/bucket")
	if err != nil {
		t.Fatalf("List: %v", err)
	}
	want := append([]string(nil), got...)
	sort.Strings(want)
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("List not sorted: got %v", got)
		}
	}
	if len(got) != 4 { // alpha, beta, m, zeta
		t.Fatalf("List returned %v, want 4 entries", got)
	}
	// The order must be stable across calls — a paginating caller resumes
	// from a marker and must see the same sequence every time.
	for i := 0; i < 5; i++ {
		again, err := fs.List("/bucket")
		if err != nil {
			t.Fatalf("List again: %v", err)
		}
		if fmt.Sprint(again) != fmt.Sprint(got) {
			t.Fatalf("List order unstable: %v vs %v", again, got)
		}
	}
	if _, err := fs.List("/bucket/alpha"); !errors.Is(err, ErrNotDir) {
		t.Fatalf("List(file) err = %v, want ErrNotDir", err)
	}
}

func parentOf(path string) string {
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == '/' {
			if i == 0 {
				return "/"
			}
			return path[:i]
		}
	}
	return "/"
}

func TestSetPolicyRoundTrip(t *testing.T) {
	fs := newPathFS(t)
	if _, err := fs.Create("/f", Policy{}); err != nil {
		t.Fatalf("Create: %v", err)
	}
	want := Policy{CachePriority: 2, ReplicationN: 3, Class: "bulk", Geo: GeoPolicy{Mode: GeoAsync, Copies: 1}}
	if err := fs.SetPolicy("/f", want); err != nil {
		t.Fatalf("SetPolicy: %v", err)
	}
	got, err := fs.Policy("/f")
	if err != nil {
		t.Fatalf("Policy: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Policy round-trip: got %+v want %+v", got, want)
	}
	// Out-of-range priorities clamp at the metadata boundary.
	if err := fs.SetPolicy("/f", Policy{CachePriority: 99}); err != nil {
		t.Fatalf("SetPolicy(clamp): %v", err)
	}
	if got, _ := fs.Policy("/f"); got.CachePriority != 3 {
		t.Fatalf("CachePriority 99 clamped to %d, want 3", got.CachePriority)
	}
	if err := fs.SetPolicy("/f", Policy{CachePriority: -7}); err != nil {
		t.Fatalf("SetPolicy(clamp-): %v", err)
	}
	if got, _ := fs.Policy("/f"); got.CachePriority != 0 {
		t.Fatalf("CachePriority -7 clamped to %d, want 0", got.CachePriority)
	}
	// Unknown classes are rejected and leave the policy untouched.
	if err := fs.SetPolicy("/f", Policy{Class: "nope"}); !errors.Is(err, ErrNoClass) {
		t.Fatalf("SetPolicy(bad class) err = %v, want ErrNoClass", err)
	}
	if got, _ := fs.Policy("/f"); got.CachePriority != 0 {
		t.Fatalf("failed SetPolicy mutated policy: %+v", got)
	}
	if _, err := fs.Policy("/missing"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Policy(missing) err = %v, want ErrNotFound", err)
	}
}

func TestWalkDeepTreeOrderAndCoverage(t *testing.T) {
	fs := newPathFS(t)
	// A deep, branchy tree: 3 tenants × 3 buckets × 4 objects, plus a
	// deep chain of single directories.
	var want []string
	want = append(want, "/gw")
	for ti := 0; ti < 3; ti++ {
		tdir := fmt.Sprintf("/gw/t%d", ti)
		want = append(want, tdir)
		for bi := 0; bi < 3; bi++ {
			bdir := fmt.Sprintf("%s/b%d", tdir, bi)
			want = append(want, bdir)
			if err := fs.MkdirAll(bdir); err != nil {
				t.Fatalf("MkdirAll: %v", err)
			}
			for oi := 0; oi < 4; oi++ {
				obj := fmt.Sprintf("%s/o%d", bdir, oi)
				want = append(want, obj)
				if _, err := fs.Create(obj, Policy{}); err != nil {
					t.Fatalf("Create: %v", err)
				}
			}
		}
	}
	chain := "/gw/deep"
	for d := 0; d < 12; d++ {
		chain += fmt.Sprintf("/d%02d", d)
	}
	if err := fs.MkdirAll(chain); err != nil {
		t.Fatalf("MkdirAll(chain): %v", err)
	}

	var got []string
	if err := fs.Walk("/gw", func(p string, ino *Inode) error {
		got = append(got, p)
		return nil
	}); err != nil {
		t.Fatalf("Walk: %v", err)
	}
	// Walk visits parents before children, children in lexical order —
	// so the full visit sequence is exactly the DFS of the sorted tree.
	var want2 []string
	want2 = append(want2, "/gw")
	want2 = append(want2, chainPrefixes("/gw/deep", 12)...)
	for ti := 0; ti < 3; ti++ {
		tdir := fmt.Sprintf("/gw/t%d", ti)
		want2 = append(want2, tdir)
		for bi := 0; bi < 3; bi++ {
			bdir := fmt.Sprintf("%s/b%d", tdir, bi)
			want2 = append(want2, bdir)
			for oi := 0; oi < 4; oi++ {
				want2 = append(want2, fmt.Sprintf("%s/o%d", bdir, oi))
			}
		}
	}
	if len(got) != len(want2) {
		t.Fatalf("Walk visited %d inodes, want %d", len(got), len(want2))
	}
	for i := range got {
		if got[i] != want2[i] {
			t.Fatalf("Walk order diverges at %d: got %q want %q\nfull: %v", i, got[i], want2[i], got)
		}
	}
	// Errors from fn abort the walk.
	boom := errors.New("boom")
	calls := 0
	err := fs.Walk("/gw", func(p string, ino *Inode) error {
		calls++
		if calls == 3 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("Walk error propagation: %v", err)
	}
	if calls != 3 {
		t.Fatalf("Walk continued after error: %d calls", calls)
	}
}

func chainPrefixes(base string, n int) []string {
	out := []string{base}
	cur := base
	for d := 0; d < n; d++ {
		cur += fmt.Sprintf("/d%02d", d)
		out = append(out, cur)
	}
	return out
}
