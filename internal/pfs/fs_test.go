package pfs

import (
	"bytes"
	"errors"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

// fakeIO is an in-memory BlockIO recording per-write policy parameters.
type fakeIO struct {
	bs   int
	vols map[string]map[int64][]byte
	// lastPrio/lastRepl record the policy knobs seen per volume.
	lastPrio map[string]int
	lastRepl map[string]int
	reads    int64
	writes   int64
}

func newFakeIO(vols ...string) *fakeIO {
	f := &fakeIO{
		bs:       512,
		vols:     make(map[string]map[int64][]byte),
		lastPrio: make(map[string]int),
		lastRepl: make(map[string]int),
	}
	for _, v := range vols {
		f.vols[v] = make(map[int64][]byte)
	}
	return f
}

func (f *fakeIO) BlockSize() int { return f.bs }

func (f *fakeIO) ReadBlocks(p *sim.Proc, vol string, lba int64, count int, prio int) ([]byte, error) {
	store, ok := f.vols[vol]
	if !ok {
		return nil, errors.New("fakeio: no volume " + vol)
	}
	f.reads++
	buf := make([]byte, count*f.bs)
	for i := 0; i < count; i++ {
		if b, ok := store[lba+int64(i)]; ok {
			copy(buf[i*f.bs:], b)
		}
	}
	return buf, nil
}

func (f *fakeIO) WriteBlocks(p *sim.Proc, vol string, lba int64, data []byte, prio, repl int) error {
	store, ok := f.vols[vol]
	if !ok {
		return errors.New("fakeio: no volume " + vol)
	}
	f.writes++
	f.lastPrio[vol] = prio
	f.lastRepl[vol] = repl
	for i := 0; i < len(data)/f.bs; i++ {
		b := make([]byte, f.bs)
		copy(b, data[i*f.bs:])
		store[lba+int64(i)] = b
	}
	return nil
}

func runFS(k *sim.Kernel, body func(p *sim.Proc)) {
	k.Go("test", body)
	k.Run()
}

func newTestFS(t *testing.T) (*FS, *fakeIO, *sim.Kernel) {
	t.Helper()
	k := sim.NewKernel(1)
	io := newFakeIO("vol.default", "vol.mirror")
	fs, err := New(k, Config{
		IO:           io,
		Classes:      map[string]string{"default": "vol.default", "mirror": "vol.mirror"},
		DefaultClass: "default",
	})
	if err != nil {
		t.Fatal(err)
	}
	return fs, io, k
}

func TestCreateWriteRead(t *testing.T) {
	fs, _, k := newTestFS(t)
	data := []byte("big science requires large research teams and huge amounts of data")
	runFS(k, func(p *sim.Proc) {
		if err := fs.MkdirAll("/lab/exp1"); err != nil {
			t.Errorf("mkdir: %v", err)
			return
		}
		if err := fs.WriteFile(p, "/lab/exp1/readme.txt", data, Policy{}); err != nil {
			t.Errorf("write: %v", err)
			return
		}
		got, err := fs.ReadFile(p, "/lab/exp1/readme.txt")
		if err != nil {
			t.Errorf("read: %v", err)
			return
		}
		if !bytes.Equal(got, data) {
			t.Errorf("round trip mismatch: %q", got)
		}
	})
	ino, err := fs.Stat("/lab/exp1/readme.txt")
	if err != nil {
		t.Fatal(err)
	}
	if ino.Size != int64(len(data)) {
		t.Fatalf("size = %d, want %d", ino.Size, len(data))
	}
}

func TestUnalignedOverwrite(t *testing.T) {
	fs, _, k := newTestFS(t)
	runFS(k, func(p *sim.Proc) {
		base := bytes.Repeat([]byte("x"), 2000)
		fs.WriteFile(p, "/f", base, Policy{})
		// Overwrite a span crossing block boundaries at odd offsets.
		patch := bytes.Repeat([]byte("Y"), 700)
		if _, err := fs.WriteAt(p, "/f", 333, patch); err != nil {
			t.Errorf("patch: %v", err)
			return
		}
		want := append([]byte(nil), base...)
		copy(want[333:], patch)
		got, _ := fs.ReadFile(p, "/f")
		if !bytes.Equal(got, want) {
			t.Error("unaligned overwrite corrupted data")
		}
	})
}

func TestSparseExtension(t *testing.T) {
	fs, _, k := newTestFS(t)
	runFS(k, func(p *sim.Proc) {
		fs.Create("/sparse", Policy{})
		if _, err := fs.WriteAt(p, "/sparse", 5000, []byte("tail")); err != nil {
			t.Errorf("sparse write: %v", err)
			return
		}
		ino, _ := fs.Stat("/sparse")
		if ino.Size != 5004 {
			t.Errorf("size = %d, want 5004", ino.Size)
		}
		buf := make([]byte, 4)
		n, err := fs.ReadAt(p, "/sparse", 5000, buf)
		if err != nil || n != 4 || string(buf) != "tail" {
			t.Errorf("read tail: %q n=%d err=%v", buf, n, err)
		}
	})
}

func TestReadPastEOF(t *testing.T) {
	fs, _, k := newTestFS(t)
	runFS(k, func(p *sim.Proc) {
		fs.WriteFile(p, "/f", []byte("abc"), Policy{})
		buf := make([]byte, 10)
		n, err := fs.ReadAt(p, "/f", 1, buf)
		if err != nil || n != 2 || string(buf[:n]) != "bc" {
			t.Errorf("short read: n=%d err=%v", n, err)
		}
		n, err = fs.ReadAt(p, "/f", 100, buf)
		if err != nil || n != 0 {
			t.Errorf("past-EOF read: n=%d err=%v", n, err)
		}
	})
}

func TestPolicyClassPlacesData(t *testing.T) {
	fs, io, k := newTestFS(t)
	runFS(k, func(p *sim.Proc) {
		fs.WriteFile(p, "/important", bytes.Repeat([]byte("a"), 600), Policy{Class: "mirror"})
		fs.WriteFile(p, "/ordinary", bytes.Repeat([]byte("b"), 600), Policy{})
	})
	if len(io.vols["vol.mirror"]) == 0 {
		t.Fatal("mirror-class file not placed in mirror volume")
	}
	if len(io.vols["vol.default"]) == 0 {
		t.Fatal("default file not in default volume")
	}
	ino, _ := fs.Stat("/important")
	for _, e := range ino.Extents {
		if e.Vol != "vol.mirror" {
			t.Fatal("extent in wrong volume")
		}
	}
}

func TestPolicyKnobsReachIO(t *testing.T) {
	fs, io, k := newTestFS(t)
	runFS(k, func(p *sim.Proc) {
		fs.WriteFile(p, "/hot", []byte("data"), Policy{CachePriority: 3, ReplicationN: 4})
	})
	if io.lastPrio["vol.default"] != 3 {
		t.Fatalf("priority = %d, want 3", io.lastPrio["vol.default"])
	}
	if io.lastRepl["vol.default"] != 4 {
		t.Fatalf("replication = %d, want 4", io.lastRepl["vol.default"])
	}
}

func TestUnknownClassRejected(t *testing.T) {
	fs, _, _ := newTestFS(t)
	if _, err := fs.Create("/f", Policy{Class: "nope"}); !errors.Is(err, ErrNoClass) {
		t.Fatalf("err = %v, want ErrNoClass", err)
	}
	fs.Create("/g", Policy{})
	if err := fs.SetPolicy("/g", Policy{Class: "nope"}); !errors.Is(err, ErrNoClass) {
		t.Fatalf("setpolicy err = %v, want ErrNoClass", err)
	}
}

func TestSetPolicyDynamic(t *testing.T) {
	fs, io, k := newTestFS(t)
	runFS(k, func(p *sim.Proc) {
		fs.WriteFile(p, "/f", []byte("v1"), Policy{})
		fs.SetPolicy("/f", Policy{ReplicationN: 3, Geo: GeoPolicy{Mode: GeoSync, Copies: 2}})
		fs.WriteAt(p, "/f", 0, []byte("v2"))
	})
	if io.lastRepl["vol.default"] != 3 {
		t.Fatal("policy change did not affect subsequent writes")
	}
	pol, _ := fs.Policy("/f")
	if pol.Geo.Mode != GeoSync || pol.Geo.Copies != 2 {
		t.Fatal("geo policy not stored")
	}
}

func TestDirectoryOps(t *testing.T) {
	fs, _, k := newTestFS(t)
	runFS(k, func(p *sim.Proc) {
		fs.MkdirAll("/a/b/c")
		fs.Create("/a/b/f1", Policy{})
		fs.Create("/a/b/f2", Policy{})
		names, err := fs.List("/a/b")
		if err != nil {
			t.Errorf("list: %v", err)
			return
		}
		sort.Strings(names)
		want := []string{"c", "f1", "f2"}
		if len(names) != 3 {
			t.Errorf("names = %v, want %v", names, want)
			return
		}
		for i := range want {
			if names[i] != want[i] {
				t.Errorf("names = %v, want %v", names, want)
			}
		}
	})
	if err := fs.Remove("/a/b"); err == nil {
		t.Fatal("removed non-empty directory")
	}
	if err := fs.Remove("/a/b/c"); err != nil {
		t.Fatalf("remove empty dir: %v", err)
	}
}

func TestRemoveFreesAndReusesBlocks(t *testing.T) {
	fs, _, k := newTestFS(t)
	var firstExt, secondExt Extent
	runFS(k, func(p *sim.Proc) {
		fs.WriteFile(p, "/f1", bytes.Repeat([]byte("a"), 512*8), Policy{})
		ino, _ := fs.Stat("/f1")
		firstExt = ino.Extents[0]
		fs.Remove("/f1")
		fs.WriteFile(p, "/f2", bytes.Repeat([]byte("b"), 512*8), Policy{})
		ino2, _ := fs.Stat("/f2")
		secondExt = ino2.Extents[0]
	})
	if firstExt.LBA != secondExt.LBA {
		t.Fatalf("freed blocks not reused: %v vs %v", firstExt, secondExt)
	}
}

func TestPathValidation(t *testing.T) {
	fs, _, _ := newTestFS(t)
	if _, err := fs.Stat("relative"); !errors.Is(err, ErrBadPath) {
		t.Fatal("relative path accepted")
	}
	if _, err := fs.Stat("/a/../b"); !errors.Is(err, ErrBadPath) {
		t.Fatal(".. accepted")
	}
	if _, err := fs.Stat("/missing"); !errors.Is(err, ErrNotFound) {
		t.Fatal("missing path wrong error")
	}
	if _, err := fs.Create("/x/y", Policy{}); !errors.Is(err, ErrNotFound) {
		t.Fatal("create under missing dir wrong error")
	}
	fs.Create("/f", Policy{})
	if _, err := fs.Create("/f", Policy{}); !errors.Is(err, ErrExists) {
		t.Fatal("duplicate create wrong error")
	}
}

func TestWriteHookInvoked(t *testing.T) {
	fs, _, k := newTestFS(t)
	var hookPath string
	var hookOff int64
	var hookLen int
	fs.SetWriteHook(func(p *sim.Proc, path string, ino *Inode, off int64, data []byte) error {
		hookPath, hookOff, hookLen = path, off, len(data)
		return nil
	})
	runFS(k, func(p *sim.Proc) {
		fs.WriteFile(p, "/geo", []byte("hello"), Policy{Geo: GeoPolicy{Mode: GeoAsync}})
	})
	if hookPath != "/geo" || hookOff != 0 || hookLen != 5 {
		t.Fatalf("hook saw %q %d %d", hookPath, hookOff, hookLen)
	}
}

func TestWalk(t *testing.T) {
	fs, _, k := newTestFS(t)
	runFS(k, func(p *sim.Proc) {
		fs.MkdirAll("/a/b")
		fs.Create("/a/b/f", Policy{})
		fs.Create("/top", Policy{})
	})
	var visited []string
	fs.Walk("/", func(path string, ino *Inode) error {
		visited = append(visited, path)
		return nil
	})
	sort.Strings(visited)
	want := []string{"/", "/a", "/a/b", "/a/b/f", "/top"}
	if len(visited) != len(want) {
		t.Fatalf("visited = %v", visited)
	}
	for i := range want {
		if visited[i] != want[i] {
			t.Fatalf("visited = %v, want %v", visited, want)
		}
	}
}

// Property: arbitrary sequences of writes at arbitrary offsets produce the
// same final content as an in-memory shadow buffer.
func TestWriteReadEquivalenceProperty(t *testing.T) {
	f := func(writes []uint16) bool {
		k := sim.NewKernel(1)
		io := newFakeIO("v")
		fs, err := New(k, Config{IO: io, Classes: map[string]string{"c": "v"}, DefaultClass: "c"})
		if err != nil {
			return false
		}
		shadow := make([]byte, 0)
		ok := true
		k.Go("t", func(p *sim.Proc) {
			fs.Create("/f", Policy{})
			for i, w := range writes {
				if i >= 12 {
					break
				}
				off := int64(w) % 3000
				val := byte(w>>8) | 1
				chunk := bytes.Repeat([]byte{val}, int(w%700)+1)
				if _, err := fs.WriteAt(p, "/f", off, chunk); err != nil {
					ok = false
					return
				}
				if need := off + int64(len(chunk)); need > int64(len(shadow)) {
					shadow = append(shadow, make([]byte, need-int64(len(shadow)))...)
				}
				copy(shadow[off:], chunk)
			}
			got, err := fs.ReadFile(p, "/f")
			if err != nil || !bytes.Equal(got, shadow) {
				ok = false
			}
		})
		k.Run()
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
