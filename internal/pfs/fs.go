// Package pfs implements the paper's parallel file system (§4): a file
// system integrated with the storage system, whose metadata carries
// per-file policy that the lower layers honor — cache retention priority,
// write-back replication factor, RAID class (by placing the file's data in
// a volume backed by that class), and geographic replication mode.
//
// File data lives in virtual volumes accessed through the coherent blade
// cluster; metadata is the in-memory "metadata center" of §7.
package pfs

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"repro/internal/sim"
)

// BlockIO is the data path beneath the file system — in the full system,
// the blade cluster's coherent block interface.
type BlockIO interface {
	BlockSize() int
	ReadBlocks(p *sim.Proc, vol string, lba int64, count int, priority int) ([]byte, error)
	WriteBlocks(p *sim.Proc, vol string, lba int64, data []byte, priority, replFactor int) error
}

// GeoMode selects how a file replicates between sites (§7.2).
type GeoMode int

// Geographic replication modes. "Key files would be synchronously
// replicated while less important files would be asynchronously
// replicated. Unimportant files may not be remotely replicated at all."
const (
	GeoNone GeoMode = iota
	GeoAsync
	GeoSync
)

func (m GeoMode) String() string {
	switch m {
	case GeoNone:
		return "none"
	case GeoAsync:
		return "async"
	case GeoSync:
		return "sync"
	default:
		return "unknown"
	}
}

// GeoPolicy configures a file's inter-site replication (§7.2): the mode,
// how many sites to copy to, and optionally which specific sites.
type GeoPolicy struct {
	Mode GeoMode
	// Copies is the number of remote sites to replicate to (0 = all
	// configured peers when Mode != GeoNone).
	Copies int
	// Sites pins replication to specific site names.
	Sites []string
}

// Policy is the per-file metadata of §4. The zero value means "inherit
// every default".
type Policy struct {
	// CachePriority overrides cache retention and QoS lane (0..3; higher
	// survives eviction longer and wins more fair-queue share). Values
	// outside the range are clamped at Create/SetPolicy time.
	CachePriority int
	// ReplicationN overrides the controller-level write-back fault
	// tolerance (0 = cluster default).
	ReplicationN int
	// Class names the storage class (→ RAID type) holding the file's
	// data; "" = file system default.
	Class string
	// Geo configures inter-site replication.
	Geo GeoPolicy
}

// Extent is a contiguous run of blocks in a backing volume.
type Extent struct {
	Vol    string
	LBA    int64
	Blocks int64
}

// Inode is one file or directory.
type Inode struct {
	Ino    uint64
	name   string
	Dir    bool
	Size   int64
	Policy Policy
	// Extents hold the file's data in order.
	Extents []Extent
	Ctime   sim.Time
	Mtime   sim.Time

	parent   *Inode
	children map[string]*Inode
}

// Name returns the inode's name within its directory.
func (ino *Inode) Name() string { return ino.name }

// Errors returned by path operations.
var (
	ErrNotFound = errors.New("pfs: no such file or directory")
	ErrExists   = errors.New("pfs: file exists")
	ErrNotDir   = errors.New("pfs: not a directory")
	ErrIsDir    = errors.New("pfs: is a directory")
	ErrBadPath  = errors.New("pfs: invalid path")
	ErrNoClass  = errors.New("pfs: unknown storage class")
)

// WriteHook observes every file write; the geo-replication layer installs
// one to implement per-file sync/async inter-site replication. A sync-mode
// hook blocks the write until remote sites acknowledge.
type WriteHook func(p *sim.Proc, path string, ino *Inode, off int64, data []byte) error

// Config assembles a file system.
type Config struct {
	// IO is the block data path.
	IO BlockIO
	// Classes maps storage-class names to backing volume names; each
	// volume must already exist below IO.
	Classes map[string]string
	// DefaultClass is used when a file's policy names no class.
	DefaultClass string
	// AllocChunkBlocks is the allocation granularity (default 16).
	AllocChunkBlocks int64
	// VolumeBlocks bounds each class volume's address space
	// (default 1<<40 blocks — effectively unbounded over a DMSD).
	VolumeBlocks int64
}

// FS is the file system.
type FS struct {
	k         *sim.Kernel
	io        BlockIO
	classes   map[string]string
	defClass  string
	chunk     int64
	root      *Inode
	nextIno   uint64
	allocs    map[string]*allocator
	volBlocks int64
	hook      WriteHook

	// Stats
	FilesCreated, FilesRemoved int64
	BytesRead, BytesWritten    int64
}

// New builds an empty file system on k.
func New(k *sim.Kernel, cfg Config) (*FS, error) {
	if cfg.IO == nil {
		return nil, errors.New("pfs: Config.IO required")
	}
	if len(cfg.Classes) == 0 {
		return nil, errors.New("pfs: at least one storage class required")
	}
	if cfg.DefaultClass == "" || cfg.Classes[cfg.DefaultClass] == "" {
		return nil, fmt.Errorf("pfs: default class %q not in Classes", cfg.DefaultClass)
	}
	if cfg.AllocChunkBlocks <= 0 {
		cfg.AllocChunkBlocks = 16
	}
	if cfg.VolumeBlocks <= 0 {
		cfg.VolumeBlocks = 1 << 40
	}
	fs := &FS{
		k:         k,
		io:        cfg.IO,
		classes:   cfg.Classes,
		defClass:  cfg.DefaultClass,
		chunk:     cfg.AllocChunkBlocks,
		allocs:    make(map[string]*allocator),
		volBlocks: cfg.VolumeBlocks,
	}
	fs.root = &Inode{Ino: 1, name: "/", Dir: true, children: make(map[string]*Inode), Ctime: k.Now()}
	fs.nextIno = 2
	for _, vol := range cfg.Classes {
		if _, ok := fs.allocs[vol]; !ok {
			fs.allocs[vol] = &allocator{limit: cfg.VolumeBlocks}
		}
	}
	return fs, nil
}

// SetWriteHook installs the inter-site replication hook.
func (fs *FS) SetWriteHook(h WriteHook) { fs.hook = h }

// BlockSize returns the data-path block size.
func (fs *FS) BlockSize() int { return fs.io.BlockSize() }

// splitPath normalizes and splits an absolute path.
func splitPath(path string) ([]string, error) {
	if !strings.HasPrefix(path, "/") {
		return nil, fmt.Errorf("%w: %q is not absolute", ErrBadPath, path)
	}
	var parts []string
	for _, seg := range strings.Split(path, "/") {
		switch seg {
		case "", ".":
		case "..":
			return nil, fmt.Errorf("%w: %q contains ..", ErrBadPath, path)
		default:
			parts = append(parts, seg)
		}
	}
	return parts, nil
}

// lookup resolves path to an inode.
func (fs *FS) lookup(path string) (*Inode, error) {
	parts, err := splitPath(path)
	if err != nil {
		return nil, err
	}
	cur := fs.root
	for _, seg := range parts {
		if !cur.Dir {
			return nil, fmt.Errorf("%w: %q", ErrNotDir, path)
		}
		next, ok := cur.children[seg]
		if !ok {
			return nil, fmt.Errorf("%w: %q", ErrNotFound, path)
		}
		cur = next
	}
	return cur, nil
}

// Stat returns the inode for path.
func (fs *FS) Stat(path string) (*Inode, error) { return fs.lookup(path) }

// Mkdir creates a single directory.
func (fs *FS) Mkdir(path string) error {
	parts, err := splitPath(path)
	if err != nil {
		return err
	}
	if len(parts) == 0 {
		return fmt.Errorf("%w: root exists", ErrExists)
	}
	parentPath := "/" + strings.Join(parts[:len(parts)-1], "/")
	parent, err := fs.lookup(parentPath)
	if err != nil {
		return err
	}
	if !parent.Dir {
		return fmt.Errorf("%w: %q", ErrNotDir, parentPath)
	}
	name := parts[len(parts)-1]
	if _, exists := parent.children[name]; exists {
		return fmt.Errorf("%w: %q", ErrExists, path)
	}
	ino := &Inode{
		Ino: fs.nextIno, name: name, Dir: true,
		children: make(map[string]*Inode),
		parent:   parent,
		Ctime:    fs.k.Now(), Mtime: fs.k.Now(),
	}
	fs.nextIno++
	parent.children[name] = ino
	return nil
}

// MkdirAll creates path and any missing parents.
func (fs *FS) MkdirAll(path string) error {
	parts, err := splitPath(path)
	if err != nil {
		return err
	}
	cur := "/"
	for _, seg := range parts {
		cur = joinPath(cur, seg)
		if err := fs.Mkdir(cur); err != nil && !errors.Is(err, ErrExists) {
			return err
		}
	}
	return nil
}

func joinPath(dir, name string) string {
	if dir == "/" {
		return "/" + name
	}
	return dir + "/" + name
}

// clampPolicy normalizes out-of-range policy fields at the metadata
// boundary: CachePriority's documented range is 0..3, and everything
// below pfs (cache lanes, QoS scheduling lanes) indexes arrays with it,
// so an unchecked value must not get past Create/SetPolicy.
func clampPolicy(policy Policy) Policy {
	if policy.CachePriority < 0 {
		policy.CachePriority = 0
	}
	if policy.CachePriority > 3 {
		policy.CachePriority = 3
	}
	return policy
}

// Create makes a new empty file with the given policy.
func (fs *FS) Create(path string, policy Policy) (*Inode, error) {
	policy = clampPolicy(policy)
	if policy.Class != "" && fs.classes[policy.Class] == "" {
		return nil, fmt.Errorf("%w: %q", ErrNoClass, policy.Class)
	}
	parts, err := splitPath(path)
	if err != nil {
		return nil, err
	}
	if len(parts) == 0 {
		return nil, ErrBadPath
	}
	parent, err := fs.lookup("/" + strings.Join(parts[:len(parts)-1], "/"))
	if err != nil {
		return nil, err
	}
	if !parent.Dir {
		return nil, ErrNotDir
	}
	name := parts[len(parts)-1]
	if _, exists := parent.children[name]; exists {
		return nil, fmt.Errorf("%w: %q", ErrExists, path)
	}
	ino := &Inode{
		Ino: fs.nextIno, name: name,
		Policy: policy,
		parent: parent,
		Ctime:  fs.k.Now(), Mtime: fs.k.Now(),
	}
	fs.nextIno++
	parent.children[name] = ino
	fs.FilesCreated++
	return ino, nil
}

// Remove deletes a file or empty directory, returning its blocks to the
// allocator.
func (fs *FS) Remove(path string) error {
	ino, err := fs.lookup(path)
	if err != nil {
		return err
	}
	if ino == fs.root {
		return ErrBadPath
	}
	if ino.Dir && len(ino.children) > 0 {
		return fmt.Errorf("pfs: directory %q not empty", path)
	}
	for _, ext := range ino.Extents {
		fs.allocs[ext.Vol].free(ext.LBA, ext.Blocks)
	}
	delete(ino.parent.children, ino.name)
	if !ino.Dir {
		fs.FilesRemoved++
	}
	return nil
}

// List returns the names in a directory in lexical order. The order is a
// contract: the gateway's ListObjects pagination and every same-seed
// byte-identical experiment table depend on directory enumeration being
// deterministic, so callers must never see map order.
func (fs *FS) List(path string) ([]string, error) {
	ino, err := fs.lookup(path)
	if err != nil {
		return nil, err
	}
	if !ino.Dir {
		return nil, ErrNotDir
	}
	out := make([]string, 0, len(ino.children))
	for name := range ino.children {
		out = append(out, name)
	}
	sort.Strings(out)
	return out, nil
}

// SetPolicy updates a file's policy metadata. Takes effect on subsequent
// I/O and (for Class) subsequent allocations — "the file behavior can
// easily be changed at any time" (§7.2).
func (fs *FS) SetPolicy(path string, policy Policy) error {
	policy = clampPolicy(policy)
	if policy.Class != "" && fs.classes[policy.Class] == "" {
		return fmt.Errorf("%w: %q", ErrNoClass, policy.Class)
	}
	ino, err := fs.lookup(path)
	if err != nil {
		return err
	}
	ino.Policy = policy
	return nil
}

// Policy returns a file's policy metadata.
func (fs *FS) Policy(path string) (Policy, error) {
	ino, err := fs.lookup(path)
	if err != nil {
		return Policy{}, err
	}
	return ino.Policy, nil
}

// Walk visits every inode under path (depth-first, children in lexical
// order — the same determinism contract as List), calling fn with the
// full path of each.
func (fs *FS) Walk(path string, fn func(p string, ino *Inode) error) error {
	ino, err := fs.lookup(path)
	if err != nil {
		return err
	}
	return fs.walk(path, ino, fn)
}

func (fs *FS) walk(path string, ino *Inode, fn func(string, *Inode) error) error {
	if err := fn(path, ino); err != nil {
		return err
	}
	if !ino.Dir {
		return nil
	}
	names := make([]string, 0, len(ino.children))
	for name := range ino.children {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if err := fs.walk(joinPath(path, name), ino.children[name], fn); err != nil {
			return err
		}
	}
	return nil
}

// classVolume resolves a file's backing volume from its policy.
func (fs *FS) classVolume(policy Policy) string {
	class := policy.Class
	if class == "" {
		class = fs.defClass
	}
	return fs.classes[class]
}
