package gateway

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"testing"

	"repro/internal/pfs"
	"repro/internal/qos"
	"repro/internal/security"
	"repro/internal/sim"
)

// testIO is an in-memory BlockIO counting every data-path touch — the
// instrument behind the zero-pfs-I/O auth assertion.
type testIO struct {
	bs            int
	vols          map[string]map[int64][]byte
	reads, writes int64
}

func newTestIO(vols ...string) *testIO {
	io := &testIO{bs: 4096, vols: make(map[string]map[int64][]byte)}
	for _, v := range vols {
		io.vols[v] = make(map[int64][]byte)
	}
	return io
}

func (f *testIO) BlockSize() int { return f.bs }

func (f *testIO) ReadBlocks(p *sim.Proc, vol string, lba int64, count, prio int) ([]byte, error) {
	store, ok := f.vols[vol]
	if !ok {
		return nil, fmt.Errorf("testio: no volume %q", vol)
	}
	f.reads++
	p.Sleep(100 * sim.Microsecond)
	buf := make([]byte, count*f.bs)
	for i := 0; i < count; i++ {
		if b, ok := store[lba+int64(i)]; ok {
			copy(buf[i*f.bs:], b)
		}
	}
	return buf, nil
}

func (f *testIO) WriteBlocks(p *sim.Proc, vol string, lba int64, data []byte, prio, repl int) error {
	store, ok := f.vols[vol]
	if !ok {
		return fmt.Errorf("testio: no volume %q", vol)
	}
	f.writes++
	p.Sleep(100 * sim.Microsecond)
	for i := 0; i*f.bs < len(data); i++ {
		store[lba+int64(i)] = append([]byte(nil), data[i*f.bs:(i+1)*f.bs]...)
	}
	return nil
}

type env struct {
	k    *sim.Kernel
	io   *testIO
	fs   *pfs.FS
	auth *security.Authority
	gw   *Gateway
}

func newEnv(t *testing.T, cfg Config) *env {
	t.Helper()
	k := sim.NewKernel(1)
	io := newTestIO("volA", "volB")
	fs, err := pfs.New(k, pfs.Config{
		IO:           io,
		Classes:      map[string]string{"default": "volA", "bulk": "volB"},
		DefaultClass: "default",
	})
	if err != nil {
		t.Fatalf("pfs.New: %v", err)
	}
	auth := security.NewAuthority(k)
	cfg.FS = fs
	cfg.Auth = auth
	gw, err := New(k, cfg)
	if err != nil {
		t.Fatalf("gateway.New: %v", err)
	}
	return &env{k: k, io: io, fs: fs, auth: auth, gw: gw}
}

// run executes fn as a simulation process to completion.
func (e *env) run(t *testing.T, fn func(p *sim.Proc) error) {
	t.Helper()
	done := false
	var err error
	e.k.Go("test", func(p *sim.Proc) {
		err = fn(p)
		done = true
	})
	for i := 0; i < 1000 && !done; i++ {
		e.k.RunFor(sim.Second)
	}
	if !done {
		t.Fatalf("test body did not complete")
	}
	if err != nil {
		t.Fatalf("test body: %v", err)
	}
}

// token registers a tenant (if new) and mints a token.
func (e *env) token(t *testing.T, tenant string) string {
	t.Helper()
	if _, err := e.auth.Tenant(tenant); err != nil {
		if _, err := e.auth.CreateTenant(tenant); err != nil {
			t.Fatalf("CreateTenant(%q): %v", tenant, err)
		}
	}
	tok, err := e.auth.Issue(tenant, 3600*sim.Second)
	if err != nil {
		t.Fatalf("Issue(%q): %v", tenant, err)
	}
	return tok
}

func patternedData(n int) []byte {
	data := make([]byte, n)
	for i := range data {
		data[i] = byte(i*7 + n)
	}
	return data
}

func TestPutGetRoundTrip(t *testing.T) {
	e := newEnv(t, Config{Layout: LayoutConfig{PartBytes: 64 << 10, SegmentBytes: 256 << 10, SmallMax: 16 << 10}})
	tok := e.token(t, "alpha")
	e.run(t, func(p *sim.Proc) error {
		if err := e.gw.CreateBucket(p, tok, "data", BucketOptions{Priority: -1}); err != nil {
			return err
		}
		// Small object → segment aggregation.
		small := patternedData(5000)
		if _, err := e.gw.PutObject(p, tok, "data", "small/one", small); err != nil {
			return err
		}
		got, ver, err := e.gw.GetObject(p, tok, "data", "small/one")
		if err != nil {
			return err
		}
		if !bytes.Equal(got, small) {
			return fmt.Errorf("small object corrupted: %d bytes", len(got))
		}
		if !ver.Layout.Segment || len(ver.Layout.Parts) != 1 {
			return fmt.Errorf("small object not segment-aggregated: %+v", ver.Layout)
		}
		// Large object → fixed-size parts (64 KiB split → 4 parts).
		large := patternedData(200 << 10)
		if _, err := e.gw.PutObject(p, tok, "data", "big/blob", large); err != nil {
			return err
		}
		got, ver, err = e.gw.GetObject(p, tok, "data", "big/blob")
		if err != nil {
			return err
		}
		if !bytes.Equal(got, large) {
			return fmt.Errorf("large object corrupted")
		}
		if ver.Layout.Segment || len(ver.Layout.Parts) != 4 {
			return fmt.Errorf("large object parts = %d, want 4", len(ver.Layout.Parts))
		}
		for _, part := range ver.Layout.Parts {
			if !strings.HasPrefix(part.Path, "/gateway/t/alpha/b/data/") {
				return fmt.Errorf("part escaped tenant subtree: %q", part.Path)
			}
		}
		// Empty object: metadata only.
		if _, err := e.gw.PutObject(p, tok, "data", "empty", nil); err != nil {
			return err
		}
		got, ver, err = e.gw.GetObject(p, tok, "data", "empty")
		if err != nil {
			return err
		}
		if len(got) != 0 || len(ver.Layout.Parts) != 0 {
			return fmt.Errorf("empty object: %d bytes, %d parts", len(got), len(ver.Layout.Parts))
		}
		st := e.gw.Stats()
		if st.Puts != 3 || st.Gets != 3 {
			return fmt.Errorf("counters: %+v", st)
		}
		if st.BytesIn != 5000+(200<<10) || st.BytesOut != st.BytesIn {
			return fmt.Errorf("byte counters: in=%d out=%d", st.BytesIn, st.BytesOut)
		}
		return nil
	})
}

func TestSegmentAggregationSharesFiles(t *testing.T) {
	e := newEnv(t, Config{Layout: LayoutConfig{SegmentBytes: 64 << 10, SmallMax: 8 << 10, Align: 4096}})
	tok := e.token(t, "alpha")
	e.run(t, func(p *sim.Proc) error {
		if err := e.gw.CreateBucket(p, tok, "tiny", BucketOptions{Priority: -1}); err != nil {
			return err
		}
		// 32 × 4 KiB objects at 64 KiB/segment → exactly 2 segment files.
		for i := 0; i < 32; i++ {
			if _, err := e.gw.PutObject(p, tok, "tiny", fmt.Sprintf("o%02d", i), patternedData(4096)); err != nil {
				return err
			}
		}
		segs, err := e.fs.List("/gateway/t/alpha/b/tiny/seg")
		if err != nil {
			return err
		}
		if len(segs) != 2 {
			return fmt.Errorf("segment files = %d, want 2 (%v)", len(segs), segs)
		}
		// Every object still reads back intact.
		for i := 0; i < 32; i++ {
			got, ver, err := e.gw.GetObject(p, tok, "tiny", fmt.Sprintf("o%02d", i))
			if err != nil {
				return err
			}
			if !bytes.Equal(got, patternedData(4096)) {
				return fmt.Errorf("object o%02d corrupted", i)
			}
			if ver.Layout.Parts[0].Off%4096 != 0 {
				return fmt.Errorf("segment slice misaligned: %+v", ver.Layout.Parts[0])
			}
		}
		return nil
	})
}

func TestListObjectsPrefixPagination(t *testing.T) {
	e := newEnv(t, Config{})
	tok := e.token(t, "alpha")
	e.run(t, func(p *sim.Proc) error {
		if err := e.gw.CreateBucket(p, tok, "logs", BucketOptions{Priority: -1}); err != nil {
			return err
		}
		// 25 keys under run/, 5 under other/.
		for i := 0; i < 25; i++ {
			if _, err := e.gw.PutObject(p, tok, "logs", fmt.Sprintf("run/%03d", i), patternedData(64)); err != nil {
				return err
			}
		}
		for i := 0; i < 5; i++ {
			if _, err := e.gw.PutObject(p, tok, "logs", fmt.Sprintf("other/%d", i), patternedData(64)); err != nil {
				return err
			}
		}
		var all []string
		marker := ""
		pages := 0
		for {
			rows, trunc, err := e.gw.ListObjects(p, tok, "logs", "run/", marker, 10)
			if err != nil {
				return err
			}
			pages++
			for _, r := range rows {
				all = append(all, r.Key)
			}
			if !trunc {
				break
			}
			marker = rows[len(rows)-1].Key
		}
		if pages != 3 || len(all) != 25 {
			return fmt.Errorf("pagination: %d pages, %d keys", pages, len(all))
		}
		for i, key := range all {
			if want := fmt.Sprintf("run/%03d", i); key != want {
				return fmt.Errorf("page order: [%d] = %q, want %q", i, key, want)
			}
		}
		// Prefix isolation: other/ keys never leak into run/ pages.
		rows, _, err := e.gw.ListObjects(p, tok, "logs", "other/", "", 100)
		if err != nil {
			return err
		}
		if len(rows) != 5 {
			return fmt.Errorf("prefix other/: %d rows", len(rows))
		}
		return nil
	})
}

func TestVersioningAndDelete(t *testing.T) {
	e := newEnv(t, Config{})
	tok := e.token(t, "alpha")
	e.run(t, func(p *sim.Proc) error {
		if err := e.gw.CreateBucket(p, tok, "ver", BucketOptions{Versioning: true, Priority: -1}); err != nil {
			return err
		}
		var seqs []uint64
		for i := 1; i <= 3; i++ {
			v, err := e.gw.PutObject(p, tok, "ver", "doc", patternedData(100*i))
			if err != nil {
				return err
			}
			seqs = append(seqs, v.Seq)
		}
		got, ver, err := e.gw.GetObject(p, tok, "ver", "doc")
		if err != nil {
			return err
		}
		if len(got) != 300 || ver.Seq != seqs[2] {
			return fmt.Errorf("latest version: %d bytes seq %d", len(got), ver.Seq)
		}
		if got, _, err = e.gw.GetObjectVersion(p, tok, "ver", "doc", seqs[0]); err != nil || len(got) != 100 {
			return fmt.Errorf("old version: %d bytes, %v", len(got), err)
		}
		// Delete adds a marker: latest get fails, old versions survive.
		if err := e.gw.DeleteObject(p, tok, "ver", "doc"); err != nil {
			return err
		}
		if _, _, err := e.gw.GetObject(p, tok, "ver", "doc"); !errors.Is(err, ErrNoObject) {
			return fmt.Errorf("get after delete: %v", err)
		}
		if _, _, err := e.gw.GetObjectVersion(p, tok, "ver", "doc", seqs[1]); err != nil {
			return fmt.Errorf("versioned data lost after delete: %v", err)
		}
		vers, err := e.gw.Versions(p, tok, "ver", "doc")
		if err != nil {
			return err
		}
		if len(vers) != 4 || !vers[3].Deleted {
			return fmt.Errorf("version chain: %d entries, last deleted=%v", len(vers), vers[len(vers)-1].Deleted)
		}
		// Deleted keys disappear from listings.
		rows, _, err := e.gw.ListObjects(p, tok, "ver", "", "", 100)
		if err != nil {
			return err
		}
		if len(rows) != 0 {
			return fmt.Errorf("deleted key still listed: %v", rows)
		}

		// Unversioned bucket: replace frees the old version's part files.
		if err := e.gw.CreateBucket(p, tok, "flat", BucketOptions{Priority: -1}); err != nil {
			return err
		}
		big := patternedData(3 << 20) // 3 parts at the default 1 MiB split
		v1, err := e.gw.PutObject(p, tok, "flat", "blob", big)
		if err != nil {
			return err
		}
		if _, err := e.gw.PutObject(p, tok, "flat", "blob", patternedData(2<<20)); err != nil {
			return err
		}
		for _, part := range v1.Layout.Parts {
			if _, err := e.fs.Stat(part.Path); !errors.Is(err, pfs.ErrNotFound) {
				return fmt.Errorf("replaced part %q not freed: %v", part.Path, err)
			}
		}
		vers, err = e.gw.Versions(p, tok, "flat", "blob")
		if err != nil {
			return err
		}
		if len(vers) != 1 {
			return fmt.Errorf("unversioned bucket kept %d versions", len(vers))
		}
		return nil
	})
}

func TestMultipartUpload(t *testing.T) {
	e := newEnv(t, Config{})
	tok := e.token(t, "alpha")
	e.run(t, func(p *sim.Proc) error {
		if err := e.gw.CreateBucket(p, tok, "mp", BucketOptions{Priority: -1}); err != nil {
			return err
		}
		id, err := e.gw.InitMultipart(p, tok, "mp", "video")
		if err != nil {
			return err
		}
		p1, p2, p3 := patternedData(100<<10), patternedData(50<<10), patternedData(75<<10)
		// Upload out of order; re-upload part 2 (the replacement wins).
		if err := e.gw.UploadPart(p, tok, "mp", id, 3, p3); err != nil {
			return err
		}
		if err := e.gw.UploadPart(p, tok, "mp", id, 1, p1); err != nil {
			return err
		}
		if err := e.gw.UploadPart(p, tok, "mp", id, 2, patternedData(10)); err != nil {
			return err
		}
		if err := e.gw.UploadPart(p, tok, "mp", id, 2, p2); err != nil {
			return err
		}
		ver, err := e.gw.CompleteMultipart(p, tok, "mp", id)
		if err != nil {
			return err
		}
		want := append(append(append([]byte(nil), p1...), p2...), p3...)
		if ver.Size != int64(len(want)) {
			return fmt.Errorf("assembled size %d, want %d", ver.Size, len(want))
		}
		got, _, err := e.gw.GetObject(p, tok, "mp", "video")
		if err != nil {
			return err
		}
		if !bytes.Equal(got, want) {
			return fmt.Errorf("multipart object corrupted")
		}
		// Completed uploads are gone.
		if err := e.gw.UploadPart(p, tok, "mp", id, 4, p1); !errors.Is(err, ErrNoUpload) {
			return fmt.Errorf("upload still open after complete: %v", err)
		}
		// Abort frees uploaded part files.
		id2, err := e.gw.InitMultipart(p, tok, "mp", "scrap")
		if err != nil {
			return err
		}
		if err := e.gw.UploadPart(p, tok, "mp", id2, 1, p1); err != nil {
			return err
		}
		if err := e.gw.AbortMultipart(p, tok, "mp", id2); err != nil {
			return err
		}
		if _, _, err := e.gw.GetObject(p, tok, "mp", "scrap"); !errors.Is(err, ErrNoObject) {
			return fmt.Errorf("aborted upload visible: %v", err)
		}
		return nil
	})
}

// TestCrossTenantDeniedAndAudited is the satellite regression: a
// cross-tenant Get on a private bucket must fail with the security
// package's denial error AND land in the Authority's audit trail.
func TestCrossTenantDeniedAndAudited(t *testing.T) {
	e := newEnv(t, Config{})
	alice := e.token(t, "alice")
	mallory := e.token(t, "mallory")
	e.run(t, func(p *sim.Proc) error {
		if err := e.gw.CreateBucket(p, alice, "private", BucketOptions{Priority: -1}); err != nil {
			return err
		}
		if _, err := e.gw.PutObject(p, alice, "private", "secret", patternedData(128)); err != nil {
			return err
		}
		if _, _, err := e.gw.GetObject(p, mallory, "private", "secret"); !errors.Is(err, security.ErrDenied) {
			return fmt.Errorf("cross-tenant get: err = %v, want security.ErrDenied", err)
		}
		found := false
		for _, ev := range e.auth.Denials() {
			if ev.Tenant == "mallory" && ev.Action == "gateway.get" && ev.Target == "private" {
				found = true
			}
		}
		if !found {
			return fmt.Errorf("denied cross-tenant get not audited: %+v", e.auth.Denials())
		}
		// Grants flow through SetBucketACL synchronously, read ≠ write.
		if err := e.gw.SetBucketACL(p, alice, "private", ACL{Grants: map[string]security.Access{"mallory": security.ReadOnly}}); err != nil {
			return err
		}
		if _, _, err := e.gw.GetObject(p, mallory, "private", "secret"); err != nil {
			return fmt.Errorf("granted read denied: %v", err)
		}
		if _, err := e.gw.PutObject(p, mallory, "private", "sneak", patternedData(10)); !errors.Is(err, security.ErrDenied) {
			return fmt.Errorf("read-only grant allowed write: %v", err)
		}
		// Non-owners cannot rewrite the ACL, and the attempt is audited.
		if err := e.gw.SetBucketACL(p, mallory, "private", ACL{Public: security.ReadWrite}); !errors.Is(err, security.ErrDenied) {
			return fmt.Errorf("non-owner ACL change: %v", err)
		}
		// Bad token: rejected through the Authority (no parallel path).
		if _, _, err := e.gw.GetObject(p, "forged-token", "private", "secret"); !errors.Is(err, security.ErrBadToken) {
			return fmt.Errorf("forged token: %v", err)
		}
		return nil
	})
}

// TestAuthPathZeroPfsIO is the tentpole assertion: the IAM tier answers
// authentication and authorization entirely from memory — across
// thousands of auth decisions (grants, denials, probes) not one block is
// read or written through pfs, and the hit latency stays far under yig's
// 10ms bound.
func TestAuthPathZeroPfsIO(t *testing.T) {
	e := newEnv(t, Config{})
	alice := e.token(t, "alice")
	bob := e.token(t, "bob")
	e.run(t, func(p *sim.Proc) error {
		if err := e.gw.CreateBucket(p, alice, "pub", BucketOptions{ACL: ACL{Public: security.ReadOnly}, Priority: -1}); err != nil {
			return err
		}
		if err := e.gw.CreateBucket(p, alice, "priv", BucketOptions{Priority: -1}); err != nil {
			return err
		}
		if _, err := e.gw.PutObject(p, alice, "pub", "obj", patternedData(8192)); err != nil {
			return err
		}

		reads, writes := e.io.reads, e.io.writes
		fsReads, fsWrites := e.fs.BytesRead, e.fs.BytesWritten
		for i := 0; i < 2000; i++ {
			if _, err := e.gw.Authorize(p, alice, "priv", true); err != nil {
				return fmt.Errorf("owner probe: %v", err)
			}
			if _, err := e.gw.Authorize(p, bob, "pub", false); err != nil {
				return fmt.Errorf("public-read probe: %v", err)
			}
			if _, err := e.gw.Authorize(p, bob, "priv", false); !errors.Is(err, security.ErrDenied) {
				return fmt.Errorf("denied probe: %v", err)
			}
			if _, err := e.gw.Authorize(p, bob, "pub", true); !errors.Is(err, security.ErrDenied) {
				return fmt.Errorf("write probe on read-only: %v", err)
			}
		}
		if e.io.reads != reads || e.io.writes != writes {
			return fmt.Errorf("auth path touched the block layer: reads %d→%d writes %d→%d",
				reads, e.io.reads, writes, e.io.writes)
		}
		if e.fs.BytesRead != fsReads || e.fs.BytesWritten != fsWrites {
			return fmt.Errorf("auth path did pfs I/O: read %d→%d written %d→%d",
				fsReads, e.fs.BytesRead, fsWrites, e.fs.BytesWritten)
		}
		if p99 := e.gw.Stats().IAMHitP99; p99 >= 10*sim.Millisecond {
			return fmt.Errorf("IAM hit p99 %v, want < 10ms", p99)
		}
		return nil
	})
}

// TestDataPathBilledToBucketOwner: whatever tenant issues the request,
// the data tier runs under the bucket owner's QoS identity — that is the
// tenant whose admission tokens and SLO accounting the op consumes.
func TestDataPathBilledToBucketOwner(t *testing.T) {
	e := newEnv(t, Config{})
	alice := e.token(t, "alice")
	bob := e.token(t, "bob")
	var seen []string
	e.fs.SetWriteHook(func(p *sim.Proc, path string, ino *pfs.Inode, off int64, data []byte) error {
		seen = append(seen, qos.FromProc(p).Tenant)
		return nil
	})
	e.run(t, func(p *sim.Proc) error {
		if err := e.gw.CreateBucket(p, alice, "shared", BucketOptions{ACL: ACL{Public: security.ReadWrite}, Priority: -1}); err != nil {
			return err
		}
		// bob writes into alice's public-write bucket.
		if _, err := e.gw.PutObject(p, bob, "shared", "from-bob", patternedData(4096)); err != nil {
			return err
		}
		if len(seen) == 0 {
			return fmt.Errorf("write hook never fired")
		}
		for _, tenant := range seen {
			if tenant != "alice" {
				return fmt.Errorf("data write billed to %q, want bucket owner alice", tenant)
			}
		}
		// The caller's own context is restored afterwards.
		if got := qos.FromProc(p).Tenant; got != "" {
			return fmt.Errorf("caller ctx leaked: tenant %q", got)
		}
		return nil
	})
}

func TestBucketNamespaceAndStatus(t *testing.T) {
	e := newEnv(t, Config{MetaShards: 4})
	tok := e.token(t, "alpha")
	e.run(t, func(p *sim.Proc) error {
		for _, name := range []string{"aaa", "bbb", "ccc", "ddd", "eee"} {
			if err := e.gw.CreateBucket(p, tok, name, BucketOptions{Priority: -1}); err != nil {
				return err
			}
		}
		if err := e.gw.CreateBucket(p, tok, "aaa", BucketOptions{Priority: -1}); !errors.Is(err, ErrBucketExists) {
			return fmt.Errorf("duplicate bucket: %v", err)
		}
		for _, bad := range []string{"", "UPPER", "has/slash", "..", "-lead", strings.Repeat("x", 64)} {
			if err := e.gw.CreateBucket(p, tok, bad, BucketOptions{Priority: -1}); !errors.Is(err, ErrBadName) {
				return fmt.Errorf("bad name %q accepted: %v", bad, err)
			}
		}
		infos := e.gw.Buckets()
		if len(infos) != 5 {
			return fmt.Errorf("Buckets() = %d rows", len(infos))
		}
		for i := 1; i < len(infos); i++ {
			if infos[i-1].Name >= infos[i].Name {
				return fmt.Errorf("Buckets() unsorted: %v", infos)
			}
		}
		if s := e.gw.Status(); !strings.Contains(s, "5 buckets") || !strings.Contains(s, "shards 4") {
			return fmt.Errorf("Status() = %q", s)
		}
		if r := e.gw.Report(); !strings.Contains(r, "shard 3:") || !strings.Contains(r, "aaa") {
			return fmt.Errorf("Report() missing content:\n%s", r)
		}
		return nil
	})
}
