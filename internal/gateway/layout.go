package gateway

import (
	"errors"
	"fmt"
)

// ErrBadName rejects tenant/bucket names that could escape their pfs
// subtree or collide with the gateway's own path grammar.
var ErrBadName = errors.New("gateway: invalid name")

// LayoutConfig shapes how object bytes map onto pfs files (yig's data
// layer, SNIPPETS.md §1): large objects split into fixed-size parts so
// their bandwidth stripes across blades, small objects aggregate into
// shared segment files so a million tiny objects do not cost a million
// inodes and single-block allocations.
type LayoutConfig struct {
	// PartBytes is the fixed split size for large objects (default 1 MiB).
	PartBytes int64
	// SegmentBytes is the capacity of one shared segment file
	// (default 4 MiB).
	SegmentBytes int64
	// SmallMax is the aggregation threshold: objects at or under it pack
	// into segment files, larger ones split into parts (default 64 KiB).
	SmallMax int64
	// Align rounds each segment slice's start offset, so slices stay
	// block-aligned and small writes avoid read-modify-write on their
	// first block (default 4096).
	Align int64
	// Classes lists the storage classes successive parts cycle through
	// ("" = file-system default class). More than one class stripes a
	// large object's parts across distinct backing volumes.
	Classes []string
}

func (c LayoutConfig) withDefaults() LayoutConfig {
	if c.PartBytes <= 0 {
		c.PartBytes = 1 << 20
	}
	if c.SegmentBytes <= 0 {
		c.SegmentBytes = 4 << 20
	}
	if c.SmallMax <= 0 {
		c.SmallMax = 64 << 10
	}
	if c.SmallMax > c.SegmentBytes {
		c.SmallMax = c.SegmentBytes
	}
	if c.Align <= 0 {
		c.Align = 4096
	}
	if len(c.Classes) == 0 {
		c.Classes = []string{""}
	}
	return c
}

// Part is one contiguous slice of an object's bytes in one pfs file.
type Part struct {
	Path  string
	Off   int64 // byte offset within the file
	Len   int64
	Class string
}

// Layout maps an object version's bytes onto pfs files, in order.
type Layout struct {
	Parts []Part
	// Segment marks a small object aggregated into a shared segment file
	// (one slice); false means dedicated part files.
	Segment bool
}

// SegCursor is a bucket's small-object aggregation point: the next free
// offset in its current segment file. It lives in the bucket's metadata
// record and only ever advances.
type SegCursor struct {
	Seg int64
	Off int64
}

// validName accepts the tenant and bucket names that may appear as one
// path segment under the gateway's pfs subtree: 1..63 chars drawn from
// [a-z0-9._-], not starting with a dot or dash (so "..", "." and
// option-like names are impossible).
func validName(s string) bool {
	if len(s) < 1 || len(s) > 63 {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z':
		case c >= '0' && c <= '9':
		case c == '.' || c == '-' || c == '_':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// tenantRoot is the pfs subtree holding every file of one tenant's
// objects. All layout paths stay strictly below it — the object-store
// spelling of the paper's tenant separation (§5).
func tenantRoot(tenant string) string { return "/gateway/t/" + tenant }

func bucketRoot(tenant, bucket string) string {
	return tenantRoot(tenant) + "/b/" + bucket
}

// PlanLayout maps an object version of the given size onto pfs files. It
// is a pure function of its arguments: object keys never reach the path
// (part files are named by the bucket-unique version sequence seq), so
// arbitrary S3 keys cannot escape the tenant subtree. cur is the bucket's
// segment cursor; the advanced cursor is returned and must be stored back
// by the caller (the metadata tier does this under the bucket's shard).
func PlanLayout(cfg LayoutConfig, tenant, bucket string, seq uint64, size int64, cur SegCursor) (Layout, SegCursor, error) {
	cfg = cfg.withDefaults()
	if !validName(tenant) || !validName(bucket) {
		return Layout{}, cur, fmt.Errorf("%w: tenant %q bucket %q", ErrBadName, tenant, bucket)
	}
	if size < 0 {
		return Layout{}, cur, fmt.Errorf("gateway: negative object size %d", size)
	}
	if cur.Seg < 0 || cur.Off < 0 {
		return Layout{}, cur, fmt.Errorf("gateway: invalid segment cursor %+v", cur)
	}
	root := bucketRoot(tenant, bucket)
	if size == 0 {
		// Empty object: metadata-only, no data files.
		return Layout{}, cur, nil
	}
	if size <= cfg.SmallMax {
		// Aggregate into the current shared segment file, aligned; roll
		// to a fresh segment when the slice would cross its capacity.
		off := (cur.Off + cfg.Align - 1) / cfg.Align * cfg.Align
		seg := cur.Seg
		if off+size > cfg.SegmentBytes {
			seg, off = seg+1, 0
		}
		lay := Layout{
			Parts:   []Part{{Path: fmt.Sprintf("%s/seg/%06d", root, seg), Off: off, Len: size, Class: cfg.Classes[0]}},
			Segment: true,
		}
		return lay, SegCursor{Seg: seg, Off: off + size}, nil
	}
	// Large object: fixed-size parts, classes cycling so consecutive
	// parts stripe across volumes when extra classes are configured.
	n := (size + cfg.PartBytes - 1) / cfg.PartBytes
	parts := make([]Part, 0, n)
	for i, rem := int64(0), size; rem > 0; i++ {
		l := cfg.PartBytes
		if rem < l {
			l = rem
		}
		parts = append(parts, Part{
			Path:  fmt.Sprintf("%s/p/%08d.%04d", root, seq, i),
			Off:   0,
			Len:   l,
			Class: cfg.Classes[int(i)%len(cfg.Classes)],
		})
		rem -= l
	}
	return Layout{Parts: parts}, cur, nil
}
