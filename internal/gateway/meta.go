package gateway

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strings"

	"repro/internal/sim"
)

// Version is one stored object version: its bucket-unique sequence
// number, size, and the layout mapping its bytes onto pfs files.
type Version struct {
	Seq     uint64
	Size    int64
	Layout  Layout
	Mtime   sim.Time
	Deleted bool // delete marker (versioned buckets)
}

// ObjectInfo is one ListObjects row.
type ObjectInfo struct {
	Key   string
	Size  int64
	Seq   uint64
	Mtime sim.Time
}

// BucketInfo summarizes one bucket for status displays.
type BucketInfo struct {
	Name       string
	Owner      string
	Versioning bool
	Shard      int
	Objects    int64
	Bytes      int64
}

type objectMeta struct {
	versions []Version // ascending by Seq
}

func (o *objectMeta) latest() *Version {
	if len(o.versions) == 0 {
		return nil
	}
	return &o.versions[len(o.versions)-1]
}

type upload struct {
	key   string
	seq   uint64
	parts map[int]Part // part number → written slice
	sizes map[int]int64
}

type bucketMeta struct {
	name       string
	owner      string
	versioning bool
	priority   int // cache/QoS priority of the bucket's data (0..3)

	keys    []string // sorted; the ListObjects pagination index
	objects map[string]*objectMeta
	uploads map[string]*upload

	nextSeq uint64
	seg     SegCursor
	objN    int64
	bytes   int64
}

// metaShard is one index server: a serial executor (semaphore of one)
// with a fixed per-op service time. This is the tier that saturates —
// one shard's ceiling is 1/OpTime index ops per second, and E16 shows
// the gateway throughput ceiling moving when buckets spread over more
// shards (yig's "add metadata servers" scaling story).
type metaShard struct {
	sem     *sim.Semaphore
	buckets map[string]*bucketMeta
	ops     int64
	busy    sim.Duration
}

// Meta is the bucket-metadata index tier (yig tier 2): bucket records,
// per-key version chains and segment cursors, sharded by bucket name.
type Meta struct {
	k      *sim.Kernel
	shards []*metaShard
	// OpTime is the modeled service time of one index operation
	// (default 250µs).
	OpTime sim.Duration
}

func newMeta(k *sim.Kernel, shards int, opTime sim.Duration) *Meta {
	if shards < 1 {
		shards = 1
	}
	if opTime <= 0 {
		opTime = 250 * sim.Microsecond
	}
	m := &Meta{k: k, shards: make([]*metaShard, shards), OpTime: opTime}
	for i := range m.shards {
		m.shards[i] = &metaShard{sem: sim.NewSemaphore(k, 1), buckets: make(map[string]*bucketMeta)}
	}
	return m
}

// shardOf maps a bucket to its index shard.
func (m *Meta) shardOf(bucket string) int {
	h := fnv.New32a()
	h.Write([]byte(bucket))
	return int(h.Sum32() % uint32(len(m.shards)))
}

// do runs fn as nops index operations on bucket's shard: FIFO through the
// shard's serial executor, charging nops service times. All index state
// mutation happens inside fn, under the shard.
func (m *Meta) do(p *sim.Proc, bucket string, nops int, fn func(*metaShard) error) error {
	s := m.shards[m.shardOf(bucket)]
	s.sem.Acquire(p, 1)
	defer s.sem.Release(1)
	d := m.OpTime * sim.Duration(nops)
	p.Sleep(d)
	s.ops += int64(nops)
	s.busy += d
	return fn(s)
}

func (s *metaShard) bucket(name string) (*bucketMeta, error) {
	b, ok := s.buckets[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoBucket, name)
	}
	return b, nil
}

// insertKey keeps the pagination index sorted.
func (b *bucketMeta) insertKey(key string) {
	i := sort.SearchStrings(b.keys, key)
	if i < len(b.keys) && b.keys[i] == key {
		return
	}
	b.keys = append(b.keys, "")
	copy(b.keys[i+1:], b.keys[i:])
	b.keys[i] = key
}

func (b *bucketMeta) removeKey(key string) {
	i := sort.SearchStrings(b.keys, key)
	if i < len(b.keys) && b.keys[i] == key {
		b.keys = append(b.keys[:i], b.keys[i+1:]...)
	}
}

// list pages through keys with prefix, strictly after startAfter,
// returning at most max rows plus whether more remain. Delete markers
// are invisible here, like S3's latest-version listing.
func (b *bucketMeta) list(prefix, startAfter string, max int) (rows []ObjectInfo, truncated bool) {
	if max <= 0 {
		max = 1000
	}
	start := sort.SearchStrings(b.keys, prefix)
	if startAfter != "" && startAfter >= prefix {
		i := sort.SearchStrings(b.keys, startAfter)
		if i < len(b.keys) && b.keys[i] == startAfter {
			i++
		}
		if i > start {
			start = i
		}
	}
	for i := start; i < len(b.keys); i++ {
		key := b.keys[i]
		if !strings.HasPrefix(key, prefix) {
			break
		}
		v := b.objects[key].latest()
		if v == nil || v.Deleted {
			continue
		}
		if len(rows) == max {
			return rows, true
		}
		rows = append(rows, ObjectInfo{Key: key, Size: v.Size, Seq: v.Seq, Mtime: v.Mtime})
	}
	return rows, false
}

// ShardLoads returns each shard's cumulative index-op count — the load
// skew signal behind the per-shard telemetry gauges.
func (m *Meta) ShardLoads() []int64 {
	out := make([]int64, len(m.shards))
	for i, s := range m.shards {
		out[i] = s.ops
	}
	return out
}
