package gateway

import (
	"reflect"
	"strings"
	"testing"
)

// FuzzObjectLayout drives PlanLayout with arbitrary tenant/bucket names,
// object keys, sizes, cursors and config knobs, and checks the placement
// invariants the object store's integrity rests on:
//
//   - round-trip: the parts tile [0, size) exactly, in order, no overlap
//   - containment: every path stays strictly inside the tenant's bucket
//     subtree — no input (hostile names, "/" or ".." in keys) can place
//     one tenant's bytes under another tenant's volume prefix
//   - segment discipline: small objects land as one aligned slice that
//     never crosses the segment capacity, and the cursor only advances
//   - determinism: identical inputs replan to identical layouts
//
// Object keys deliberately do not appear in PlanLayout's signature —
// part files are named by version sequence. The fuzzer feeds the key
// through the same seq derivation the metadata tier would use, proving
// arbitrary keys cannot influence path safety.
func FuzzObjectLayout(f *testing.F) {
	f.Add("alpha", "data", "a/b/c.txt", int64(5000), int64(0), int64(0), int64(1<<20), int64(4<<20), int64(64<<10))
	f.Add("alpha", "data", "big", int64(5<<20), int64(2), int64(12345), int64(1<<20), int64(4<<20), int64(64<<10))
	f.Add("u123456", "bkt-1", "../../etc/passwd", int64(1), int64(9), int64(4095), int64(4096), int64(8192), int64(4096))
	f.Add("Bad/Tenant", "data", "k", int64(100), int64(0), int64(0), int64(0), int64(0), int64(0))
	f.Add("t", "b", "", int64(0), int64(0), int64(0), int64(1), int64(1), int64(1))
	f.Fuzz(func(t *testing.T, tenant, bucket, key string, size, curSeg, curOff, partBytes, segBytes, smallMax int64) {
		cfg := LayoutConfig{PartBytes: partBytes, SegmentBytes: segBytes, SmallMax: smallMax}
		// The key influences only the version sequence, as in the real
		// metadata tier.
		var seq uint64
		for i := 0; i < len(key); i++ {
			seq = seq*131 + uint64(key[i])
		}
		seq %= 1 << 30
		cur := SegCursor{Seg: curSeg, Off: curOff}
		lay, next, err := PlanLayout(cfg, tenant, bucket, seq, size, cur)
		if err != nil {
			if validName(tenant) && validName(bucket) && size >= 0 && curSeg >= 0 && curOff >= 0 {
				t.Fatalf("PlanLayout rejected valid input: %v", err)
			}
			return
		}
		if !validName(tenant) || !validName(bucket) || size < 0 || curSeg < 0 || curOff < 0 {
			t.Fatalf("PlanLayout accepted invalid input tenant=%q bucket=%q size=%d cur=%+v", tenant, bucket, size, cur)
		}
		norm := cfg.withDefaults()

		// Round-trip: parts tile [0, size) exactly.
		var total int64
		for _, part := range lay.Parts {
			if part.Len <= 0 {
				t.Fatalf("empty part: %+v", part)
			}
			if part.Off < 0 {
				t.Fatalf("negative offset: %+v", part)
			}
			total += part.Len
		}
		if total != size {
			t.Fatalf("parts cover %d bytes, want %d", total, size)
		}
		if size == 0 && len(lay.Parts) != 0 {
			t.Fatalf("empty object got parts: %+v", lay)
		}

		// Containment: every path confined to this tenant's bucket
		// subtree, every path a clean absolute path (no "", ".", "..").
		root := "/gateway/t/" + tenant + "/b/" + bucket + "/"
		for _, part := range lay.Parts {
			if !strings.HasPrefix(part.Path, root) {
				t.Fatalf("part %q escapes %q", part.Path, root)
			}
			for _, segm := range strings.Split(part.Path[1:], "/") {
				if segm == "" || segm == "." || segm == ".." {
					t.Fatalf("unclean path %q", part.Path)
				}
			}
		}

		if lay.Segment {
			if size == 0 || size > norm.SmallMax {
				t.Fatalf("segment layout for size %d (SmallMax %d)", size, norm.SmallMax)
			}
			part := lay.Parts[0]
			if len(lay.Parts) != 1 {
				t.Fatalf("segment object with %d parts", len(lay.Parts))
			}
			if part.Off%norm.Align != 0 {
				t.Fatalf("segment slice misaligned: %+v (align %d)", part, norm.Align)
			}
			if part.Off+part.Len > norm.SegmentBytes {
				t.Fatalf("slice crosses segment capacity: %+v (cap %d)", part, norm.SegmentBytes)
			}
			// Cursor advances, never rewinds.
			if next.Seg < cur.Seg || (next.Seg == cur.Seg && next.Off < cur.Off) {
				t.Fatalf("cursor went backwards: %+v -> %+v", cur, next)
			}
			// A follow-up plan from the returned cursor cannot overlap
			// this slice.
			lay2, _, err := PlanLayout(cfg, tenant, bucket, seq+1, size, next)
			if err != nil {
				t.Fatalf("replan from advanced cursor: %v", err)
			}
			if lay2.Segment {
				p2 := lay2.Parts[0]
				if p2.Path == part.Path && p2.Off < part.Off+part.Len {
					t.Fatalf("successive slices overlap: %+v then %+v", part, p2)
				}
			}
		} else if size > 0 {
			if next != cur {
				t.Fatalf("part-file layout moved the cursor: %+v -> %+v", cur, next)
			}
			for i, part := range lay.Parts {
				if part.Off != 0 {
					t.Fatalf("part file slice at offset %d", part.Off)
				}
				if part.Len > norm.PartBytes {
					t.Fatalf("part %d larger than split size: %d > %d", i, part.Len, norm.PartBytes)
				}
				if i < len(lay.Parts)-1 && part.Len != norm.PartBytes {
					t.Fatalf("non-final part %d not full size: %d", i, part.Len)
				}
			}
		}

		// Determinism: same inputs, same plan.
		lay3, next3, err3 := PlanLayout(cfg, tenant, bucket, seq, size, cur)
		if err3 != nil || !reflect.DeepEqual(lay, lay3) || next != next3 {
			t.Fatalf("replan diverged: %+v vs %+v (%v)", lay, lay3, err3)
		}
	})
}
