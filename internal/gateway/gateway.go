// Package gateway is the S3-style object plane over the shared pool —
// the paper's §8 "network integration" claim grown to production shape.
// It follows yig's three-tier split (SNIPPETS.md §1):
//
//   - IAM tier: token auth through security.Authority plus an in-memory
//     mirror of every bucket's owner/ACL, so authorization never touches
//     pfs or the block path (asserted by test).
//   - Metadata index tier: bucket records, sorted key indexes and
//     object-version → layout maps, sharded by bucket across serial
//     index servers. This tier saturates first; adding shards moves the
//     gateway's throughput ceiling (experiment E16).
//   - Data tier: the existing controller → coherence → disk path via
//     pfs, with each op tagged with the bucket owner's qos.Ctx so
//     admission control and the PI governors bill the right tenant.
//
// Large objects split into fixed-size parts (classes can stripe them
// across volumes); small objects aggregate into shared segment files so
// per-blade IOPS stay balanced under millions of tiny objects.
package gateway

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/pfs"
	"repro/internal/qos"
	"repro/internal/security"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

// Config assembles a Gateway.
type Config struct {
	// FS is the parallel file system holding object data (required).
	FS *pfs.FS
	// Auth is the security authority every token resolves through
	// (required — there is no gateway-local token path).
	Auth *security.Authority
	// MetaShards is the index-server count (default 1).
	MetaShards int
	// MetaOpTime is the modeled service time per index op
	// (default 250µs).
	MetaOpTime sim.Duration
	// IAMLatency is the in-memory auth lookup cost (default 100µs).
	IAMLatency sim.Duration
	// Layout shapes part splitting and segment aggregation.
	Layout LayoutConfig
	// DefaultPriority is the cache/QoS priority of bucket data when a
	// bucket does not choose its own (0..3, default 1).
	DefaultPriority int
}

// BucketOptions configures CreateBucket.
type BucketOptions struct {
	ACL        ACL
	Versioning bool
	// Priority overrides Config.DefaultPriority for this bucket's data
	// (-1 = inherit).
	Priority int
}

// Gateway is the object API front end.
type Gateway struct {
	k    *sim.Kernel
	fs   *pfs.FS
	iam  *IAM
	meta *Meta
	cfg  Config

	puts, gets, lists, deletes, multiparts int64
	bytesIn, bytesOut                      int64
}

// New builds a gateway over fs and auth.
func New(k *sim.Kernel, cfg Config) (*Gateway, error) {
	if cfg.FS == nil || cfg.Auth == nil {
		return nil, fmt.Errorf("gateway: Config.FS and Config.Auth required")
	}
	if cfg.MetaShards < 1 {
		cfg.MetaShards = 1
	}
	if cfg.DefaultPriority < 0 || cfg.DefaultPriority > 3 {
		cfg.DefaultPriority = 1
	}
	cfg.Layout = cfg.Layout.withDefaults()
	return &Gateway{
		k:    k,
		fs:   cfg.FS,
		iam:  newIAM(cfg.Auth, cfg.IAMLatency),
		meta: newMeta(k, cfg.MetaShards, cfg.MetaOpTime),
		cfg:  cfg,
	}, nil
}

// MetaShards returns the index-shard count.
func (g *Gateway) MetaShards() int { return len(g.meta.shards) }

// withTenant tags p with the bucket owner's QoS identity for the
// duration of a data-path operation, restoring the previous context
// after — admission tokens and governor SLO accounting land on the
// tenant who owns the data, whoever issued the request.
func withTenant(p *sim.Proc, owner string, lane int) func() {
	prev := qos.FromProc(p)
	qos.SetCtx(p, qos.Ctx{Tenant: owner, Lane: lane})
	return func() { qos.SetCtx(p, prev) }
}

// Authorize authenticates token and checks its access to bucket without
// touching any object — the health-check probe, and the surface the
// zero-pfs-I/O auth-path test drives.
func (g *Gateway) Authorize(p *sim.Proc, token, bucket string, write bool) (tenant string, err error) {
	tenant, _, err = g.iam.authorize(p, token, bucket, write, "probe")
	return tenant, err
}

// CreateBucket registers a new bucket owned by the token's tenant.
func (g *Gateway) CreateBucket(p *sim.Proc, token, bucket string, opts BucketOptions) error {
	tenant, err := g.iam.authenticate(p, token)
	if err != nil {
		return err
	}
	if !validName(bucket) || !validName(tenant) {
		return fmt.Errorf("%w: bucket %q", ErrBadName, bucket)
	}
	prio := opts.Priority
	if prio < 0 || prio > 3 {
		prio = g.cfg.DefaultPriority
	}
	err = g.meta.do(p, bucket, 1, func(s *metaShard) error {
		if _, exists := s.buckets[bucket]; exists {
			return fmt.Errorf("%w: %q", ErrBucketExists, bucket)
		}
		s.buckets[bucket] = &bucketMeta{
			name: bucket, owner: tenant, versioning: opts.Versioning, priority: prio,
			objects: make(map[string]*objectMeta),
			uploads: make(map[string]*upload),
			// Sequences start at 1: seq 0 is the "latest version" sentinel
			// in lookups.
			nextSeq: 1,
		}
		return nil
	})
	if err != nil {
		return err
	}
	root := bucketRoot(tenant, bucket)
	if err := g.fs.MkdirAll(root + "/p"); err != nil {
		return err
	}
	if err := g.fs.MkdirAll(root + "/seg"); err != nil {
		return err
	}
	g.iam.put(bucket, tenant, opts.ACL)
	g.cfg.Auth.Record(tenant, "gateway.mkbucket", bucket, true, "")
	return nil
}

// SetBucketACL replaces a bucket's ACL (owner only). The authoritative
// record and the IAM mirror update together, synchronously — the cache
// is never stale.
func (g *Gateway) SetBucketACL(p *sim.Proc, token, bucket string, acl ACL) error {
	tenant, err := g.iam.authenticate(p, token)
	if err != nil {
		return err
	}
	err = g.meta.do(p, bucket, 1, func(s *metaShard) error {
		b, err := s.bucket(bucket)
		if err != nil {
			return err
		}
		if b.owner != tenant {
			g.cfg.Auth.Record(tenant, "gateway.setacl", bucket, false, "not owner")
			g.iam.denials++
			return fmt.Errorf("%w: tenant %q on bucket %q", security.ErrDenied, tenant, bucket)
		}
		return nil
	})
	if err != nil {
		return err
	}
	g.iam.put(bucket, tenant, acl)
	return nil
}

// SetVersioning flips a bucket's versioning mode (owner only).
func (g *Gateway) SetVersioning(p *sim.Proc, token, bucket string, on bool) error {
	tenant, err := g.iam.authenticate(p, token)
	if err != nil {
		return err
	}
	return g.meta.do(p, bucket, 1, func(s *metaShard) error {
		b, err := s.bucket(bucket)
		if err != nil {
			return err
		}
		if b.owner != tenant {
			g.cfg.Auth.Record(tenant, "gateway.versioning", bucket, false, "not owner")
			g.iam.denials++
			return fmt.Errorf("%w: tenant %q on bucket %q", security.ErrDenied, tenant, bucket)
		}
		b.versioning = on
		return nil
	})
}

func validKey(key string) error {
	if key == "" || len(key) > 1024 {
		return fmt.Errorf("%w: key length %d", ErrBadName, len(key))
	}
	return nil
}

// PutObject stores data as a new version of bucket/key: one index op to
// assign the version and plan the layout, the data writes on the owner's
// QoS identity, then one index op to commit the version. Unversioned
// buckets replace (and free) the previous version's part files.
func (g *Gateway) PutObject(p *sim.Proc, token, bucket, key string, data []byte) (Version, error) {
	_, owner, err := g.iam.authorize(p, token, bucket, true, "put")
	if err != nil {
		return Version{}, err
	}
	if err := validKey(key); err != nil {
		return Version{}, err
	}
	size := int64(len(data))
	var ver Version
	var prio int
	err = g.meta.do(p, bucket, 1, func(s *metaShard) error {
		b, err := s.bucket(bucket)
		if err != nil {
			return err
		}
		seq := b.nextSeq
		lay, cur, err := PlanLayout(g.cfg.Layout, b.owner, bucket, seq, size, b.seg)
		if err != nil {
			return err
		}
		b.nextSeq++
		b.seg = cur
		prio = b.priority
		ver = Version{Seq: seq, Size: size, Layout: lay, Mtime: p.Now()}
		return nil
	})
	if err != nil {
		return Version{}, err
	}
	if err := g.writeParts(p, owner, prio, ver.Layout, data); err != nil {
		return Version{}, err
	}
	var oldParts []Part
	err = g.meta.do(p, bucket, 1, func(s *metaShard) error {
		b, err := s.bucket(bucket)
		if err != nil {
			return err
		}
		o := b.objects[key]
		if o == nil {
			o = &objectMeta{}
			b.objects[key] = o
			b.insertKey(key)
		}
		if prev := o.latest(); prev != nil && !prev.Deleted {
			b.bytes -= prev.Size
		} else {
			b.objN++
		}
		if b.versioning {
			o.versions = append(o.versions, ver)
		} else {
			for _, v := range o.versions {
				if !v.Layout.Segment {
					oldParts = append(oldParts, v.Layout.Parts...)
				}
			}
			o.versions = o.versions[:0]
			o.versions = append(o.versions, ver)
		}
		b.bytes += size
		return nil
	})
	if err != nil {
		return Version{}, err
	}
	// Replaced part files go back to the allocator; segment slices stay
	// until segment compaction (future work) reclaims them.
	for _, part := range oldParts {
		_ = g.fs.Remove(part.Path)
	}
	g.puts++
	g.bytesIn += size
	return ver, nil
}

// writeParts lands an object version's bytes, parts in parallel like the
// pfs extent groups beneath them. Segment files are created on first
// touch; part files are version-unique and must not pre-exist.
func (g *Gateway) writeParts(p *sim.Proc, owner string, prio int, lay Layout, data []byte) error {
	restore := withTenant(p, owner, prio)
	defer restore()
	var off int64
	var firstErr error
	grp := sim.NewGroup(g.k)
	for _, part := range lay.Parts {
		part := part
		slice := data[off : off+part.Len]
		off += part.Len
		policy := pfs.Policy{CachePriority: prio, Class: part.Class}
		if _, err := g.fs.Stat(part.Path); err != nil {
			if _, err := g.fs.Create(part.Path, policy); err != nil {
				return err
			}
		}
		grp.Add(1)
		g.k.Go("gw.write", func(q *sim.Proc) {
			defer grp.Done()
			restoreQ := withTenant(q, owner, prio)
			defer restoreQ()
			if _, err := g.fs.WriteAt(q, part.Path, part.Off, slice); err != nil && firstErr == nil {
				firstErr = err
			}
		})
	}
	grp.Wait(p)
	return firstErr
}

// readVersion fetches one version's bytes, parts in parallel.
func (g *Gateway) readVersion(p *sim.Proc, owner string, prio int, ver Version) ([]byte, error) {
	restore := withTenant(p, owner, prio)
	defer restore()
	buf := make([]byte, ver.Size)
	var off int64
	var firstErr error
	grp := sim.NewGroup(g.k)
	for _, part := range ver.Layout.Parts {
		part := part
		slice := buf[off : off+part.Len]
		off += part.Len
		grp.Add(1)
		g.k.Go("gw.read", func(q *sim.Proc) {
			defer grp.Done()
			restoreQ := withTenant(q, owner, prio)
			defer restoreQ()
			if _, err := g.fs.ReadAt(q, part.Path, part.Off, slice); err != nil && firstErr == nil {
				firstErr = err
			}
		})
	}
	grp.Wait(p)
	if firstErr != nil {
		return nil, firstErr
	}
	return buf, nil
}

// lookup runs one index op resolving bucket/key to a version: the latest
// live one (seq == 0) or an exact version.
func (g *Gateway) lookup(p *sim.Proc, bucket, key string, seq uint64) (ver Version, prio int, err error) {
	err = g.meta.do(p, bucket, 1, func(s *metaShard) error {
		b, err := s.bucket(bucket)
		if err != nil {
			return err
		}
		prio = b.priority
		o := b.objects[key]
		if o == nil {
			return fmt.Errorf("%w: %s/%s", ErrNoObject, bucket, key)
		}
		if seq == 0 {
			v := o.latest()
			if v == nil || v.Deleted {
				return fmt.Errorf("%w: %s/%s", ErrNoObject, bucket, key)
			}
			ver = *v
			return nil
		}
		for i := range o.versions {
			if o.versions[i].Seq == seq {
				if o.versions[i].Deleted {
					return fmt.Errorf("%w: %s/%s@%d (delete marker)", ErrNoObject, bucket, key, seq)
				}
				ver = o.versions[i]
				return nil
			}
		}
		return fmt.Errorf("%w: %s/%s@%d", ErrNoObject, bucket, key, seq)
	})
	return ver, prio, err
}

// GetObject returns the latest live version of bucket/key.
func (g *Gateway) GetObject(p *sim.Proc, token, bucket, key string) ([]byte, Version, error) {
	return g.get(p, token, bucket, key, 0)
}

// GetObjectVersion returns one specific version of bucket/key.
func (g *Gateway) GetObjectVersion(p *sim.Proc, token, bucket, key string, seq uint64) ([]byte, Version, error) {
	return g.get(p, token, bucket, key, seq)
}

func (g *Gateway) get(p *sim.Proc, token, bucket, key string, seq uint64) ([]byte, Version, error) {
	_, owner, err := g.iam.authorize(p, token, bucket, false, "get")
	if err != nil {
		return nil, Version{}, err
	}
	if err := validKey(key); err != nil {
		return nil, Version{}, err
	}
	ver, prio, err := g.lookup(p, bucket, key, seq)
	if err != nil {
		return nil, Version{}, err
	}
	data, err := g.readVersion(p, owner, prio, ver)
	if err != nil {
		return nil, Version{}, err
	}
	g.gets++
	g.bytesOut += ver.Size
	return data, ver, nil
}

// Versions lists every stored version of bucket/key, oldest first
// (delete markers included).
func (g *Gateway) Versions(p *sim.Proc, token, bucket, key string) ([]Version, error) {
	if _, _, err := g.iam.authorize(p, token, bucket, false, "versions"); err != nil {
		return nil, err
	}
	var out []Version
	err := g.meta.do(p, bucket, 1, func(s *metaShard) error {
		b, err := s.bucket(bucket)
		if err != nil {
			return err
		}
		o := b.objects[key]
		if o == nil {
			return fmt.Errorf("%w: %s/%s", ErrNoObject, bucket, key)
		}
		out = append(out, o.versions...)
		return nil
	})
	return out, err
}

// DeleteObject removes bucket/key: versioned buckets gain a delete
// marker, unversioned buckets drop the object and free its part files.
func (g *Gateway) DeleteObject(p *sim.Proc, token, bucket, key string) error {
	_, _, err := g.iam.authorize(p, token, bucket, true, "delete")
	if err != nil {
		return err
	}
	if err := validKey(key); err != nil {
		return err
	}
	var oldParts []Part
	err = g.meta.do(p, bucket, 1, func(s *metaShard) error {
		b, err := s.bucket(bucket)
		if err != nil {
			return err
		}
		o := b.objects[key]
		if o == nil {
			return fmt.Errorf("%w: %s/%s", ErrNoObject, bucket, key)
		}
		live := o.latest()
		if live == nil || live.Deleted {
			return fmt.Errorf("%w: %s/%s", ErrNoObject, bucket, key)
		}
		b.objN--
		b.bytes -= live.Size
		if b.versioning {
			marker := Version{Seq: b.nextSeq, Deleted: true, Mtime: p.Now()}
			b.nextSeq++
			o.versions = append(o.versions, marker)
			return nil
		}
		for _, v := range o.versions {
			if !v.Layout.Segment {
				oldParts = append(oldParts, v.Layout.Parts...)
			}
		}
		delete(b.objects, key)
		b.removeKey(key)
		return nil
	})
	if err != nil {
		return err
	}
	for _, part := range oldParts {
		_ = g.fs.Remove(part.Path)
	}
	g.deletes++
	return nil
}

// ListObjects pages through a bucket's live keys with prefix, strictly
// after startAfter, at most max rows (default 1000). truncated reports
// whether another page exists; resume by passing the last row's key.
func (g *Gateway) ListObjects(p *sim.Proc, token, bucket, prefix, startAfter string, max int) (rows []ObjectInfo, truncated bool, err error) {
	if _, _, err = g.iam.authorize(p, token, bucket, false, "list"); err != nil {
		return nil, false, err
	}
	err = g.meta.do(p, bucket, 1, func(s *metaShard) error {
		b, err := s.bucket(bucket)
		if err != nil {
			return err
		}
		rows, truncated = b.list(prefix, startAfter, max)
		return nil
	})
	if err != nil {
		return nil, false, err
	}
	g.lists++
	return rows, truncated, nil
}

// InitMultipart opens a multipart upload for bucket/key and returns its
// upload ID. Parts upload independently (any order, any sizes); nothing
// is visible until CompleteMultipart commits the assembled version.
func (g *Gateway) InitMultipart(p *sim.Proc, token, bucket, key string) (string, error) {
	_, _, err := g.iam.authorize(p, token, bucket, true, "multipart")
	if err != nil {
		return "", err
	}
	if err := validKey(key); err != nil {
		return "", err
	}
	var id string
	err = g.meta.do(p, bucket, 1, func(s *metaShard) error {
		b, err := s.bucket(bucket)
		if err != nil {
			return err
		}
		seq := b.nextSeq
		b.nextSeq++
		id = fmt.Sprintf("up-%08d", seq)
		b.uploads[id] = &upload{key: key, seq: seq, parts: make(map[int]Part), sizes: make(map[int]int64)}
		return nil
	})
	return id, err
}

// UploadPart stores one part of an open upload. Part numbers start at 1;
// re-uploading a number replaces that part.
func (g *Gateway) UploadPart(p *sim.Proc, token, bucket, uploadID string, partNum int, data []byte) error {
	_, owner, err := g.iam.authorize(p, token, bucket, true, "multipart")
	if err != nil {
		return err
	}
	if partNum < 1 || partNum > 10000 {
		return fmt.Errorf("%w: part number %d", ErrBadName, partNum)
	}
	var path string
	var prio int
	err = g.meta.do(p, bucket, 1, func(s *metaShard) error {
		b, err := s.bucket(bucket)
		if err != nil {
			return err
		}
		up, ok := b.uploads[uploadID]
		if !ok {
			return fmt.Errorf("%w: %q", ErrNoUpload, uploadID)
		}
		prio = b.priority
		path = fmt.Sprintf("%s/p/%08d.%04d", bucketRoot(b.owner, bucket), up.seq, partNum)
		return nil
	})
	if err != nil {
		return err
	}
	lay := Layout{Parts: []Part{{Path: path, Off: 0, Len: int64(len(data))}}}
	if len(data) == 0 {
		lay = Layout{}
	}
	if err := g.writeParts(p, owner, prio, lay, data); err != nil {
		return err
	}
	return g.meta.do(p, bucket, 1, func(s *metaShard) error {
		b, err := s.bucket(bucket)
		if err != nil {
			return err
		}
		up, ok := b.uploads[uploadID]
		if !ok {
			return fmt.Errorf("%w: %q", ErrNoUpload, uploadID)
		}
		up.parts[partNum] = Part{Path: path, Off: 0, Len: int64(len(data))}
		up.sizes[partNum] = int64(len(data))
		return nil
	})
}

// CompleteMultipart assembles the uploaded parts (in part-number order)
// into one committed version of the upload's key.
func (g *Gateway) CompleteMultipart(p *sim.Proc, token, bucket, uploadID string) (Version, error) {
	_, _, err := g.iam.authorize(p, token, bucket, true, "multipart")
	if err != nil {
		return Version{}, err
	}
	var ver Version
	var oldParts []Part
	err = g.meta.do(p, bucket, 1, func(s *metaShard) error {
		b, err := s.bucket(bucket)
		if err != nil {
			return err
		}
		up, ok := b.uploads[uploadID]
		if !ok {
			return fmt.Errorf("%w: %q", ErrNoUpload, uploadID)
		}
		nums := make([]int, 0, len(up.parts))
		for n := range up.parts {
			nums = append(nums, n)
		}
		sort.Ints(nums)
		var lay Layout
		var size int64
		for _, n := range nums {
			part := up.parts[n]
			if part.Len == 0 {
				continue
			}
			lay.Parts = append(lay.Parts, part)
			size += part.Len
		}
		ver = Version{Seq: up.seq, Size: size, Layout: lay, Mtime: p.Now()}
		key := up.key
		o := b.objects[key]
		if o == nil {
			o = &objectMeta{}
			b.objects[key] = o
			b.insertKey(key)
		}
		if prev := o.latest(); prev != nil && !prev.Deleted {
			b.bytes -= prev.Size
		} else {
			b.objN++
		}
		if !b.versioning {
			for _, v := range o.versions {
				if !v.Layout.Segment {
					oldParts = append(oldParts, v.Layout.Parts...)
				}
			}
			o.versions = o.versions[:0]
		}
		o.versions = append(o.versions, ver)
		b.bytes += size
		delete(b.uploads, uploadID)
		return nil
	})
	if err != nil {
		return Version{}, err
	}
	for _, part := range oldParts {
		_ = g.fs.Remove(part.Path)
	}
	g.multiparts++
	g.bytesIn += ver.Size
	return ver, nil
}

// AbortMultipart discards an open upload and frees its part files.
func (g *Gateway) AbortMultipart(p *sim.Proc, token, bucket, uploadID string) error {
	_, _, err := g.iam.authorize(p, token, bucket, true, "multipart")
	if err != nil {
		return err
	}
	var paths []string
	err = g.meta.do(p, bucket, 1, func(s *metaShard) error {
		b, err := s.bucket(bucket)
		if err != nil {
			return err
		}
		up, ok := b.uploads[uploadID]
		if !ok {
			return fmt.Errorf("%w: %q", ErrNoUpload, uploadID)
		}
		for _, part := range up.parts {
			paths = append(paths, part.Path)
		}
		delete(b.uploads, uploadID)
		return nil
	})
	if err != nil {
		return err
	}
	sort.Strings(paths)
	for _, path := range paths {
		_ = g.fs.Remove(path)
	}
	return nil
}

// Buckets lists every bucket across all shards, sorted by name — admin
// introspection for yottactl and the experiments, off the service path.
func (g *Gateway) Buckets() []BucketInfo {
	var out []BucketInfo
	for i, s := range g.meta.shards {
		for _, b := range s.buckets {
			out = append(out, BucketInfo{
				Name: b.name, Owner: b.owner, Versioning: b.versioning,
				Shard: i, Objects: b.objN, Bytes: b.bytes,
			})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Stats is a point-in-time counter snapshot for experiments and reports.
type Stats struct {
	Auths, Denials                         int64
	Puts, Gets, Lists, Deletes, Multiparts int64
	BytesIn, BytesOut                      int64
	ShardOps                               []int64
	IAMHitP50, IAMHitP99                   sim.Duration
}

// Ops sums the object-API operation counters.
func (s Stats) Ops() int64 { return s.Puts + s.Gets + s.Lists + s.Deletes + s.Multiparts }

// Stats snapshots the gateway's counters.
func (g *Gateway) Stats() Stats {
	return Stats{
		Auths: g.iam.auths, Denials: g.iam.denials,
		Puts: g.puts, Gets: g.gets, Lists: g.lists, Deletes: g.deletes, Multiparts: g.multiparts,
		BytesIn: g.bytesIn, BytesOut: g.bytesOut,
		ShardOps:  g.meta.ShardLoads(),
		IAMHitP50: g.iam.hitLat.P50(), IAMHitP99: g.iam.hitLat.P99(),
	}
}

// RegisterTelemetry publishes the per-tier rates under s: object-API op
// counters, IAM auth counters and hit-latency histogram, and per-shard
// index-op loads (the saturation/skew signal E16 watches).
func (g *Gateway) RegisterTelemetry(s telemetry.Scope) {
	s.Int("ops/put", func() int64 { return g.puts })
	s.Int("ops/get", func() int64 { return g.gets })
	s.Int("ops/list", func() int64 { return g.lists })
	s.Int("ops/delete", func() int64 { return g.deletes })
	s.Int("ops/multipart", func() int64 { return g.multiparts })
	s.Int("bytes/in", func() int64 { return g.bytesIn })
	s.Int("bytes/out", func() int64 { return g.bytesOut })
	s.Int("iam/auths", func() int64 { return g.iam.auths })
	s.Int("iam/denials", func() int64 { return g.iam.denials })
	s.Histogram("iam/latency", g.iam.hitLat)
	meta := s.Sub("meta")
	for i := range g.meta.shards {
		shard := g.meta.shards[i]
		meta.Int(fmt.Sprintf("shard/%d/ops", i), func() int64 { return shard.ops })
		meta.Int(fmt.Sprintf("shard/%d/busy_ms", i), func() int64 { return int64(shard.busy.Millis()) })
	}
}

// Status is the one-line summary for yottactl `gateway status`.
func (g *Gateway) Status() string {
	st := g.Stats()
	var objs, bytes int64
	n := 0
	for _, s := range g.meta.shards {
		for _, b := range s.buckets {
			objs += b.objN
			bytes += b.bytes
			n++
		}
	}
	return fmt.Sprintf("gateway: %d buckets, %d objects, %d bytes | shards %d | ops put=%d get=%d list=%d del=%d multi=%d | iam auths=%d denials=%d p99=%v",
		n, objs, bytes, len(g.meta.shards), st.Puts, st.Gets, st.Lists, st.Deletes, st.Multiparts, st.Auths, st.Denials, st.IAMHitP99)
}

// Report renders the full three-tier picture for yottactl `gateway
// report`: IAM counters and latency, per-shard index loads, and the
// bucket table.
func (g *Gateway) Report() string {
	var sb strings.Builder
	st := g.Stats()
	fmt.Fprintf(&sb, "object gateway (three-tier)\n")
	fmt.Fprintf(&sb, "  iam:  auths=%d denials=%d hit p50=%v p99=%v\n", st.Auths, st.Denials, st.IAMHitP50, st.IAMHitP99)
	fmt.Fprintf(&sb, "  meta: %d shard(s), op time %v\n", len(g.meta.shards), g.meta.OpTime)
	for i, s := range g.meta.shards {
		fmt.Fprintf(&sb, "    shard %d: %d index ops, busy %v, %d bucket(s)\n", i, s.ops, s.busy, len(s.buckets))
	}
	fmt.Fprintf(&sb, "  data: put=%d get=%d list=%d del=%d multi=%d in=%d out=%d bytes\n",
		st.Puts, st.Gets, st.Lists, st.Deletes, st.Multiparts, st.BytesIn, st.BytesOut)
	buckets := g.Buckets()
	if len(buckets) > 0 {
		fmt.Fprintf(&sb, "  buckets:\n")
		for _, b := range buckets {
			ver := ""
			if b.Versioning {
				ver = " versioned"
			}
			fmt.Fprintf(&sb, "    %-20s owner=%-12s shard=%d objects=%d bytes=%d%s\n",
				b.Name, b.Owner, b.Shard, b.Objects, b.Bytes, ver)
		}
	}
	return sb.String()
}
