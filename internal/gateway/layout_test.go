package gateway

import (
	"reflect"
	"strings"
	"testing"
)

func TestPlanLayoutPartSplit(t *testing.T) {
	cfg := LayoutConfig{PartBytes: 1 << 20, Classes: []string{"", "bulk"}}
	lay, cur, err := PlanLayout(cfg, "alpha", "data", 7, (5<<20)+123, SegCursor{})
	if err != nil {
		t.Fatalf("PlanLayout: %v", err)
	}
	if lay.Segment {
		t.Fatalf("large object marked segment")
	}
	if len(lay.Parts) != 6 {
		t.Fatalf("parts = %d, want 6", len(lay.Parts))
	}
	var total int64
	for i, part := range lay.Parts {
		total += part.Len
		if i < 5 && part.Len != 1<<20 {
			t.Fatalf("part %d len %d, want full split size", i, part.Len)
		}
		if part.Off != 0 {
			t.Fatalf("part file slice at nonzero offset: %+v", part)
		}
		if wantClass := []string{"", "bulk"}[i%2]; part.Class != wantClass {
			t.Fatalf("part %d class %q, want %q (striping)", i, part.Class, wantClass)
		}
		if !strings.HasPrefix(part.Path, "/gateway/t/alpha/b/data/p/") {
			t.Fatalf("part path %q outside bucket subtree", part.Path)
		}
	}
	if total != (5<<20)+123 {
		t.Fatalf("parts tile %d bytes, want %d", total, (5<<20)+123)
	}
	if cur != (SegCursor{}) {
		t.Fatalf("large object moved the segment cursor: %+v", cur)
	}
	// Distinct seqs → distinct part paths (no version ever collides).
	lay2, _, _ := PlanLayout(cfg, "alpha", "data", 8, 1<<21, SegCursor{})
	for _, a := range lay.Parts {
		for _, b := range lay2.Parts {
			if a.Path == b.Path {
				t.Fatalf("versions share a part file: %q", a.Path)
			}
		}
	}
}

func TestPlanLayoutSegmentAggregation(t *testing.T) {
	cfg := LayoutConfig{SegmentBytes: 256 << 10, SmallMax: 64 << 10, Align: 4096}
	cur := SegCursor{}
	var prevEnd int64
	var prevSeg int64
	for i := uint64(0); i < 50; i++ {
		size := int64(3000 + 700*int64(i%5))
		lay, next, err := PlanLayout(cfg, "alpha", "data", i, size, cur)
		if err != nil {
			t.Fatalf("PlanLayout: %v", err)
		}
		if !lay.Segment || len(lay.Parts) != 1 {
			t.Fatalf("small object layout: %+v", lay)
		}
		part := lay.Parts[0]
		if part.Off%4096 != 0 {
			t.Fatalf("slice misaligned: %+v", part)
		}
		if part.Off+part.Len > 256<<10 {
			t.Fatalf("slice crosses segment capacity: %+v", part)
		}
		seg := segOf(t, part.Path)
		if seg == prevSeg && part.Off < prevEnd {
			t.Fatalf("slice overlaps predecessor: off %d < prev end %d", part.Off, prevEnd)
		}
		if seg < prevSeg {
			t.Fatalf("segment number went backwards: %d -> %d", prevSeg, seg)
		}
		prevSeg, prevEnd = seg, part.Off+part.Len
		cur = next
	}
	if cur.Seg == 0 {
		t.Fatalf("50 × ~4KiB-aligned slices fit one 256KiB segment — cursor never rolled")
	}
}

func segOf(t *testing.T, path string) int64 {
	t.Helper()
	i := strings.LastIndex(path, "/")
	var seg int64
	for _, c := range path[i+1:] {
		seg = seg*10 + int64(c-'0')
	}
	return seg
}

func TestPlanLayoutDeterministicAndValidates(t *testing.T) {
	cfg := LayoutConfig{}
	a1, c1, err1 := PlanLayout(cfg, "alpha", "data", 3, 12345, SegCursor{Seg: 2, Off: 777})
	a2, c2, err2 := PlanLayout(cfg, "alpha", "data", 3, 12345, SegCursor{Seg: 2, Off: 777})
	if err1 != nil || err2 != nil || !reflect.DeepEqual(a1, a2) || c1 != c2 {
		t.Fatalf("PlanLayout not deterministic: %+v/%v vs %+v/%v", a1, err1, a2, err2)
	}
	for _, bad := range [][2]string{
		{"", "data"}, {"alpha", ""}, {"Al", "data"}, {"alpha", "a/b"},
		{"..", "data"}, {"alpha", ".."}, {"-x", "data"}, {"alpha", ".hidden"},
	} {
		if _, _, err := PlanLayout(cfg, bad[0], bad[1], 1, 100, SegCursor{}); err == nil {
			t.Fatalf("PlanLayout accepted tenant=%q bucket=%q", bad[0], bad[1])
		}
	}
	if _, _, err := PlanLayout(cfg, "alpha", "data", 1, -1, SegCursor{}); err == nil {
		t.Fatalf("PlanLayout accepted negative size")
	}
	if _, _, err := PlanLayout(cfg, "alpha", "data", 1, 100, SegCursor{Seg: -1}); err == nil {
		t.Fatalf("PlanLayout accepted negative cursor")
	}
}
