package gateway

import (
	"errors"
	"fmt"

	"repro/internal/metrics"
	"repro/internal/security"
	"repro/internal/sim"
)

// Errors returned by the object API.
var (
	ErrNoBucket     = errors.New("gateway: no such bucket")
	ErrBucketExists = errors.New("gateway: bucket exists")
	ErrNoObject     = errors.New("gateway: no such object")
	ErrNoUpload     = errors.New("gateway: no such multipart upload")
)

// ACL is a bucket's access policy. The owner always has full access;
// everyone else gets the public level or their explicit grant, whichever
// is higher. Levels reuse the security package's Access scale so the
// block and object planes speak one permission language.
type ACL struct {
	// Public is the access level granted to any authenticated tenant.
	Public security.Access
	// Grants names per-tenant access levels.
	Grants map[string]security.Access
}

// allows reports whether a non-owner tenant may read (write=false) or
// write (write=true) under this ACL.
func (a ACL) allows(tenant string, write bool) bool {
	level := a.Public
	if g, ok := a.Grants[tenant]; ok && g > level {
		level = g
	}
	if write {
		return level == security.ReadWrite
	}
	return level >= security.ReadOnly
}

// clone deep-copies the ACL so the IAM cache never aliases caller maps.
func (a ACL) clone() ACL {
	out := ACL{Public: a.Public}
	if len(a.Grants) > 0 {
		out.Grants = make(map[string]security.Access, len(a.Grants))
		for k, v := range a.Grants {
			out.Grants[k] = v
		}
	}
	return out
}

// iamEntry is one bucket's authorization record in the in-memory cache.
type iamEntry struct {
	owner string
	acl   ACL
}

// IAM is the gateway's authentication/authorization tier (yig tier 1):
// token verification delegates to security.Authority — there is no
// parallel token path — and every bucket's owner/ACL is mirrored into an
// in-memory cache, so the whole auth decision touches only memory. The
// design point (SNIPPETS.md §1) is that auth must stay off the storage
// path: Authorize performs zero pfs I/O, asserted by test.
type IAM struct {
	auth *security.Authority
	// Latency models the in-memory credential lookup cost; well under
	// yig's <10ms bound, surfaced in the hit-latency histogram.
	Latency sim.Duration

	entries map[string]iamEntry // bucket → owner/ACL

	hitLat  *metrics.Histogram
	auths   int64
	denials int64
}

func newIAM(auth *security.Authority, latency sim.Duration) *IAM {
	if latency <= 0 {
		latency = 100 * sim.Microsecond
	}
	return &IAM{
		auth:    auth,
		Latency: latency,
		entries: make(map[string]iamEntry),
		hitLat:  metrics.NewHistogram(),
	}
}

// put installs or replaces a bucket's authorization record.
func (i *IAM) put(bucket, owner string, acl ACL) {
	i.entries[bucket] = iamEntry{owner: owner, acl: acl.clone()}
}

func (i *IAM) drop(bucket string) { delete(i.entries, bucket) }

// authenticate resolves a token to a tenant through the Authority,
// charging the in-memory lookup latency.
func (i *IAM) authenticate(p *sim.Proc, token string) (string, error) {
	start := p.Now()
	tenant, err := i.auth.Authenticate(token)
	p.Sleep(i.Latency)
	if err != nil {
		i.denials++
		return "", err // Authority already audited the bad token
	}
	i.auths++
	i.hitLat.Observe(p.Now().Sub(start))
	return tenant, nil
}

// authorize authenticates the token and checks the bucket ACL in one
// in-memory pass, returning the acting tenant and the bucket owner (whose
// QoS identity the data path bills). Denials are audited through the
// Authority so the object plane lands in the same trail as block access.
func (i *IAM) authorize(p *sim.Proc, token, bucket string, write bool, action string) (tenant, owner string, err error) {
	start := p.Now()
	tenant, err = i.auth.Authenticate(token)
	p.Sleep(i.Latency)
	if err != nil {
		i.denials++
		return "", "", err
	}
	e, ok := i.entries[bucket]
	if !ok {
		return "", "", fmt.Errorf("%w: %q", ErrNoBucket, bucket)
	}
	if tenant != e.owner && !e.acl.allows(tenant, write) {
		i.denials++
		i.auth.Record(tenant, "gateway."+action, bucket, false, "bucket acl")
		return "", "", fmt.Errorf("%w: tenant %q on bucket %q", security.ErrDenied, tenant, bucket)
	}
	i.auths++
	i.hitLat.Observe(p.Now().Sub(start))
	return tenant, e.owner, nil
}
