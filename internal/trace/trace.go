// Package trace provides deterministic per-operation tracing for the
// simulated storage system. Spans are stamped from the sim kernel's
// virtual clock, so a traced run produces byte-identical output across
// runs with the same seed, and tracing never perturbs simulation timing
// (it takes no virtual time and draws no randomness).
//
// A Tracer hands out root spans (one per client op); the span's Ctx
// propagates through the call chain two ways: implicitly, because
// sim.Kernel.Go copies the spawning process's context into children, and
// explicitly over simulated RPC, where simnet carries the caller's Ctx in
// the request and installs it on the handler process. Every layer in
// between just calls FromProc(p).Child(...) — no tracer plumbing.
//
// All span handles are nil-safe: an untraced path pays one nil check and
// nothing else.
package trace

import (
	"fmt"
	"sort"

	"repro/internal/metrics"
	"repro/internal/sim"
)

// Phase classifies where a span's time is spent. Phase histograms and the
// breakdown table aggregate by these.
type Phase string

const (
	// Op is a whole client operation (read/write) — the trace root.
	Op Phase = "op"
	// Queue is time waiting for a contended resource (controller CPU
	// slot, disk queue) before service begins.
	Queue Phase = "queue"
	// Fabric is a simulated-network RPC, wire time plus remote handling.
	Fabric Phase = "fabric"
	// Coherence is a cache-coherence protocol exchange (gets/getx/inv/
	// fetch). Coherence spans include the fabric spans nested under them;
	// durations are inclusive.
	Coherence Phase = "coherence"
	// Disk is drive service time (seek + rotation + transfer).
	Disk Phase = "disk"
	// Repl is a replication push of dirty data to buddy blades.
	Repl Phase = "repl"
	// CacheHit marks a block served from the local blade cache (an
	// instant span: Start == End).
	CacheHit Phase = "cache"
	// Watchdog marks a telemetry watchdog event (hot-spot, SLO breach,
	// stall) — an instant span interleaving alarms with the operations
	// they explain.
	Watchdog Phase = "watchdog"
	// Balance is a hot-spot rebalancer action: one home migration, with
	// the coherence/fabric spans of the migrate exchange nested under it.
	Balance Phase = "balance"
)

// Phases lists every phase in canonical (breakdown-table) order.
var Phases = []Phase{Op, Queue, Fabric, Coherence, Disk, Repl, CacheHit, Watchdog, Balance}

// Span is one completed timed region. IDs are assigned in start order and
// spans are recorded in end order, both deterministic under the sim
// kernel, so serialized traces are reproducible byte-for-byte.
type Span struct {
	Trace  uint64   `json:"trace"`
	ID     uint64   `json:"id"`
	Parent uint64   `json:"parent,omitempty"`
	Name   string   `json:"name"`
	Phase  Phase    `json:"phase"`
	Where  string   `json:"where,omitempty"`
	Detail string   `json:"detail,omitempty"`
	Start  sim.Time `json:"start"`
	End    sim.Time `json:"end"`
}

// Duration returns the span's inclusive duration.
func (s Span) Duration() sim.Duration { return s.End.Sub(s.Start) }

// DefaultCap bounds the number of retained spans per tracer. Phase
// histograms are always fed; only the raw span log is capped, so long
// warm phases cannot exhaust memory.
const DefaultCap = 1 << 18

// droppedTraceCap bounds the set of trace IDs marked as having lost at
// least one span to the retention cap. Past this the tracer degrades to a
// single overflow flag, so analyzers know truncation became untrackable
// rather than trusting a partial set.
const droppedTraceCap = 1 << 16

// Tracer collects spans for one kernel. It is not safe for concurrent
// use, matching the kernel's single-threaded execution model. A nil
// *Tracer is valid everywhere and records nothing.
type Tracer struct {
	k        *sim.Kernel
	enabled  bool
	nextSpan uint64
	spans    []Span
	phases   map[Phase]*metrics.Histogram
	cap      int
	dropped  int64
	started  int64
	ended    int64

	// droppedTraces marks traces that lost at least one span past the
	// retention cap; a dropped leaf leaves no structural evidence in the
	// log, so analyzers need this to avoid silently mis-attributing a
	// truncated DAG. Bounded by droppedTraceCap, then droppedOverflow.
	droppedTraces   map[uint64]struct{}
	droppedOverflow bool
}

// NewTracer returns a disabled tracer bound to k's clock. Call SetEnabled
// to start recording.
func NewTracer(k *sim.Kernel) *Tracer {
	t := &Tracer{k: k, cap: DefaultCap, phases: make(map[Phase]*metrics.Histogram, len(Phases))}
	for _, ph := range Phases {
		t.phases[ph] = metrics.NewHistogram()
	}
	return t
}

// SetEnabled turns span creation on or off. Children of spans already in
// flight still complete after disabling, so traces are never truncated
// mid-op; only new roots and new children of live contexts are gated here
// via StartTrace.
func (t *Tracer) SetEnabled(on bool) {
	if t != nil {
		t.enabled = on
	}
}

// Enabled reports whether the tracer is currently recording new traces.
func (t *Tracer) Enabled() bool { return t != nil && t.enabled }

// SetCap bounds the retained span log (≤ 0 restores DefaultCap).
func (t *Tracer) SetCap(n int) {
	if t == nil {
		return
	}
	if n <= 0 {
		n = DefaultCap
	}
	t.cap = n
}

// StartTrace opens a new root span (trace id == root span id). It returns
// nil when the tracer is nil or disabled; all Active methods tolerate a
// nil receiver.
func (t *Tracer) StartTrace(name string, phase Phase, where string) *Active {
	if t == nil || !t.enabled {
		return nil
	}
	t.nextSpan++
	t.started++
	return &Active{t: t, s: Span{
		Trace: t.nextSpan,
		ID:    t.nextSpan,
		Name:  name,
		Phase: phase,
		Where: where,
		Start: t.k.Now(),
	}}
}

// child opens a span under (trace, parent). Internal; reached via Ctx.
func (t *Tracer) child(traceID, parent uint64, name string, phase Phase, where string) *Active {
	if t == nil {
		return nil
	}
	t.nextSpan++
	t.started++
	return &Active{t: t, s: Span{
		Trace:  traceID,
		ID:     t.nextSpan,
		Parent: parent,
		Name:   name,
		Phase:  phase,
		Where:  where,
		Start:  t.k.Now(),
	}}
}

func (t *Tracer) record(s Span) {
	t.ended++
	if h := t.phases[s.Phase]; h != nil {
		h.ObserveTraced(s.Duration(), s.Trace)
	}
	if len(t.spans) >= t.cap {
		t.dropped++
		t.markTraceDropped(s.Trace)
		return
	}
	t.spans = append(t.spans, s)
}

// markTraceDropped records that trace id lost a span to the retention cap.
func (t *Tracer) markTraceDropped(id uint64) {
	if t.droppedTraces == nil {
		t.droppedTraces = make(map[uint64]struct{})
	}
	if _, ok := t.droppedTraces[id]; ok {
		return
	}
	if len(t.droppedTraces) >= droppedTraceCap {
		t.droppedOverflow = true
		return
	}
	t.droppedTraces[id] = struct{}{}
}

// TraceDropped reports whether trace id is known to have lost at least one
// span to the retention cap (its DAG in Spans() is incomplete). When
// DroppedTraceOverflow is true the set itself is incomplete and a false
// return is inconclusive.
func (t *Tracer) TraceDropped(id uint64) bool {
	if t == nil {
		return false
	}
	_, ok := t.droppedTraces[id]
	return ok
}

// DroppedTraceOverflow reports whether so many distinct traces lost spans
// that the dropped-trace set itself overflowed.
func (t *Tracer) DroppedTraceOverflow() bool { return t != nil && t.droppedOverflow }

// DroppedTraces returns the IDs of traces known to have lost spans, in
// ascending order. A trace that lost every span leaves no mark in Spans()
// at all; this is the only record it existed.
func (t *Tracer) DroppedTraces() []uint64 {
	if t == nil || len(t.droppedTraces) == 0 {
		return nil
	}
	out := make([]uint64, 0, len(t.droppedTraces))
	for id := range t.droppedTraces {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Spans returns the retained span log in end order.
func (t *Tracer) Spans() []Span {
	if t == nil {
		return nil
	}
	return t.spans
}

// Started and Ended count spans opened and completed; Dropped counts
// spans that ended past the retention cap (still counted in histograms).
func (t *Tracer) Started() int64 { return t.started }
func (t *Tracer) Ended() int64   { return t.ended }
func (t *Tracer) Dropped() int64 {
	if t == nil {
		return 0
	}
	return t.dropped
}

// PhaseHistogram returns the histogram of span durations (milliseconds)
// for phase, or nil for an unknown phase or nil tracer.
func (t *Tracer) PhaseHistogram(phase Phase) *metrics.Histogram {
	if t == nil {
		return nil
	}
	return t.phases[phase]
}

// Ctx identifies a position in a trace: which tracer, which trace, and
// the span new children should parent under. The zero Ctx is "untraced".
// Ctx is what travels on sim.Proc and across simulated RPC.
type Ctx struct {
	t     *Tracer
	trace uint64
	span  uint64
}

// Valid reports whether c belongs to a live trace.
func (c Ctx) Valid() bool { return c.t != nil }

// TraceID returns the trace this context belongs to (0 if invalid).
func (c Ctx) TraceID() uint64 {
	if !c.Valid() {
		return 0
	}
	return c.trace
}

// Child opens a span under c, or returns nil for an invalid Ctx.
func (c Ctx) Child(name string, phase Phase, where string) *Active {
	if !c.Valid() {
		return nil
	}
	return c.t.child(c.trace, c.span, name, phase, where)
}

// FromProc extracts the trace context carried by p (zero Ctx if none).
func FromProc(p *sim.Proc) Ctx {
	if p == nil {
		return Ctx{}
	}
	if c, ok := p.TraceCtx().(Ctx); ok {
		return c
	}
	return Ctx{}
}

// Active is an open span. The nil *Active is a valid no-op handle, so
// instrumented code never branches on "is tracing on".
type Active struct {
	t     *Tracer
	s     Span
	ended bool
}

// Ctx returns the context that parents children under this span. For a
// nil receiver it returns the zero (invalid) Ctx.
func (a *Active) Ctx() Ctx {
	if a == nil {
		return Ctx{}
	}
	return Ctx{t: a.t, trace: a.s.Trace, span: a.s.ID}
}

// Child opens a span nested under a.
func (a *Active) Child(name string, phase Phase, where string) *Active {
	return a.Ctx().Child(name, phase, where)
}

// TraceID returns the trace this span belongs to (0 for a nil handle).
func (a *Active) TraceID() uint64 {
	if a == nil {
		return 0
	}
	return a.s.Trace
}

// Detail attaches a free-form annotation and returns a for chaining.
func (a *Active) Detail(format string, args ...any) *Active {
	if a != nil {
		a.s.Detail = fmt.Sprintf(format, args...)
	}
	return a
}

// End stamps the span with the current virtual time and records it. End
// is idempotent; extra calls are ignored.
func (a *Active) End() {
	if a == nil || a.ended {
		return
	}
	a.ended = true
	a.s.End = a.t.k.Now()
	a.t.record(a.s)
}

// Push installs a's context as p's trace context and returns a restore
// function, so fan-out spawned under this span parents correctly:
//
//	pop := span.Push(p)
//	... k.Go(...) children inherit span's ctx ...
//	pop()
//
// A nil receiver returns a no-op restore.
func (a *Active) Push(p *sim.Proc) func() {
	if a == nil || p == nil {
		return func() {}
	}
	prev := p.TraceCtx()
	p.SetTraceCtx(a.Ctx())
	return func() { p.SetTraceCtx(prev) }
}

// BreakdownTable renders per-phase latency statistics (count, mean, p50,
// p99 in milliseconds) in canonical phase order, skipping empty phases.
func (t *Tracer) BreakdownTable(title string) *metrics.Table {
	tab := metrics.NewTable(title, "phase", "spans", "mean ms", "p50 ms", "p99 ms")
	if t == nil {
		return tab
	}
	for _, ph := range Phases {
		h := t.phases[ph]
		if h == nil || h.Count() == 0 {
			continue
		}
		tab.AddRow(string(ph),
			fmt.Sprintf("%d", h.Count()),
			fmt.Sprintf("%.3f", h.Mean().Millis()),
			fmt.Sprintf("%.3f", h.Quantile(0.50).Millis()),
			fmt.Sprintf("%.3f", h.Quantile(0.99).Millis()))
	}
	return tab
}
