package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/sim"
)

func TestNilTracerIsSafe(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Fatal("nil tracer enabled")
	}
	tr.SetEnabled(true)
	sp := tr.StartTrace("op", Op, "x")
	if sp != nil {
		t.Fatal("nil tracer returned a span")
	}
	sp.Detail("d").End() // nil Active: no-op
	if sp.Ctx().Valid() {
		t.Fatal("nil span ctx valid")
	}
	pop := sp.Push(nil)
	pop()
	if err := tr.WriteJSONL(&bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "traceEvents") {
		t.Fatalf("nil chrome export = %q", buf.String())
	}
}

func TestDisabledTracerRecordsNothing(t *testing.T) {
	k := sim.NewKernel(1)
	defer k.Close()
	tr := NewTracer(k)
	if sp := tr.StartTrace("op", Op, "x"); sp != nil {
		t.Fatal("disabled tracer returned a span")
	}
	if len(tr.Spans()) != 0 {
		t.Fatal("disabled tracer recorded spans")
	}
}

func TestSpanNestingAndIDs(t *testing.T) {
	k := sim.NewKernel(1)
	defer k.Close()
	tr := NewTracer(k)
	tr.SetEnabled(true)

	done := false
	k.Go("op", func(p *sim.Proc) {
		root := tr.StartTrace("read", Op, "blade0")
		pop := root.Push(p)
		p.Sleep(sim.Millisecond)
		child := FromProc(p).Child("rpc:gets", Fabric, "blade1")
		p.Sleep(2 * sim.Millisecond)
		grand := child.Child("disk-read", Disk, "disk3")
		p.Sleep(3 * sim.Millisecond)
		grand.End()
		child.End()
		pop()
		root.End()
		done = true
	})
	k.Run()
	if !done {
		t.Fatal("proc did not finish")
	}

	spans := tr.Spans()
	if len(spans) != 3 {
		t.Fatalf("spans = %d, want 3", len(spans))
	}
	// End order: grand, child, root.
	grand, child, root := spans[0], spans[1], spans[2]
	if root.Trace != root.ID || root.Parent != 0 {
		t.Fatalf("root identity wrong: %+v", root)
	}
	if child.Parent != root.ID || child.Trace != root.Trace {
		t.Fatalf("child not nested under root: %+v", child)
	}
	if grand.Parent != child.ID || grand.Trace != root.Trace {
		t.Fatalf("grandchild not nested under child: %+v", grand)
	}
	// IDs in start order.
	if !(root.ID < child.ID && child.ID < grand.ID) {
		t.Fatalf("ids not in start order: %d %d %d", root.ID, child.ID, grand.ID)
	}
	// Virtual-time stamps.
	if grand.Duration() != 3*sim.Millisecond {
		t.Fatalf("grand duration = %v", grand.Duration())
	}
	if child.Duration() != 5*sim.Millisecond {
		t.Fatalf("child duration = %v", child.Duration())
	}
	if root.Duration() != 6*sim.Millisecond {
		t.Fatalf("root duration = %v", root.Duration())
	}
	// Phase histograms fed.
	if tr.PhaseHistogram(Disk).Count() != 1 || tr.PhaseHistogram(Fabric).Count() != 1 || tr.PhaseHistogram(Op).Count() != 1 {
		t.Fatal("phase histograms not fed")
	}
}

func TestCtxInheritedBySpawnedProcs(t *testing.T) {
	k := sim.NewKernel(1)
	defer k.Close()
	tr := NewTracer(k)
	tr.SetEnabled(true)

	k.Go("parent", func(p *sim.Proc) {
		root := tr.StartTrace("op", Op, "a")
		pop := root.Push(p)
		grp := sim.NewGroup(k)
		for i := 0; i < 3; i++ {
			grp.Add(1)
			k.Go("child", func(q *sim.Proc) {
				defer grp.Done()
				FromProc(q).Child("work", Disk, "d").End()
			})
		}
		pop()
		grp.Wait(p)
		root.End()
	})
	k.Run()

	spans := tr.Spans()
	if len(spans) != 4 {
		t.Fatalf("spans = %d, want 4", len(spans))
	}
	rootID := spans[len(spans)-1].ID
	for _, s := range spans[:3] {
		if s.Parent != rootID {
			t.Fatalf("spawned child span parent = %d, want root %d", s.Parent, rootID)
		}
	}
}

// A proc spawned by a kernel callback (cur == nil) must NOT inherit a
// context from whatever proc happened to run earlier.
func TestCallbackSpawnDoesNotInherit(t *testing.T) {
	k := sim.NewKernel(1)
	defer k.Close()
	tr := NewTracer(k)
	tr.SetEnabled(true)

	var leaked bool
	k.Go("traced", func(p *sim.Proc) {
		root := tr.StartTrace("op", Op, "a")
		defer root.End()
		pop := root.Push(p)
		defer pop()
		k.After(sim.Millisecond, func() {
			k.Go("background", func(q *sim.Proc) {
				leaked = FromProc(q).Valid()
			})
		})
		p.Sleep(2 * sim.Millisecond)
	})
	k.Run()
	if leaked {
		t.Fatal("callback-spawned proc inherited a trace context")
	}
}

func TestSpanCapDropsButCounts(t *testing.T) {
	k := sim.NewKernel(1)
	defer k.Close()
	tr := NewTracer(k)
	tr.SetEnabled(true)
	tr.SetCap(4)
	for i := 0; i < 10; i++ {
		tr.StartTrace("op", Op, "x").End()
	}
	if len(tr.Spans()) != 4 {
		t.Fatalf("retained %d spans, want cap 4", len(tr.Spans()))
	}
	if tr.Dropped() != 6 {
		t.Fatalf("dropped = %d, want 6", tr.Dropped())
	}
	if tr.PhaseHistogram(Op).Count() != 10 {
		t.Fatalf("histogram count = %d, want all 10", tr.PhaseHistogram(Op).Count())
	}
}

func TestEndIsIdempotent(t *testing.T) {
	k := sim.NewKernel(1)
	defer k.Close()
	tr := NewTracer(k)
	tr.SetEnabled(true)
	sp := tr.StartTrace("op", Op, "x")
	sp.End()
	sp.End()
	if len(tr.Spans()) != 1 {
		t.Fatalf("double End recorded %d spans", len(tr.Spans()))
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	k := sim.NewKernel(1)
	defer k.Close()
	tr := NewTracer(k)
	tr.SetEnabled(true)
	root := tr.StartTrace("read", Op, "blade0")
	root.Detail("vol@0+4")
	root.Child("rpc:gets", Fabric, "blade1").End()
	root.End()

	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("jsonl lines = %d, want 2", len(lines))
	}
	for _, ln := range lines {
		var s Span
		if err := json.Unmarshal([]byte(ln), &s); err != nil {
			t.Fatalf("bad jsonl line %q: %v", ln, err)
		}
		if s.Trace == 0 || s.ID == 0 {
			t.Fatalf("zero ids in %q", ln)
		}
	}
}

func TestChromeExportWellFormed(t *testing.T) {
	k := sim.NewKernel(1)
	defer k.Close()
	tr := NewTracer(k)
	tr.SetEnabled(true)
	done := false
	k.Go("op", func(p *sim.Proc) {
		root := tr.StartTrace("read", Op, "blade0")
		ch := root.Child("disk-read", Disk, "disk1")
		p.Sleep(sim.Millisecond)
		ch.End()
		root.End()
		done = true
	})
	k.Run()
	if !done {
		t.Fatal("proc did not finish")
	}

	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome export not valid JSON: %v", err)
	}
	var x, m int
	for _, ev := range doc.TraceEvents {
		switch ev["ph"] {
		case "X":
			x++
			if _, ok := ev["ts"].(float64); !ok {
				t.Fatalf("X event without ts: %v", ev)
			}
		case "M":
			m++
		}
	}
	if x != 2 {
		t.Fatalf("complete events = %d, want 2", x)
	}
	if m != 2 { // two distinct Where values → two thread_name rows
		t.Fatalf("metadata events = %d, want 2", m)
	}
}

// Two identical runs must serialize identically — the subsystem's core
// guarantee.
func TestDeterministicExport(t *testing.T) {
	run := func() (string, string) {
		k := sim.NewKernel(7)
		defer k.Close()
		tr := NewTracer(k)
		tr.SetEnabled(true)
		for i := 0; i < 5; i++ {
			k.Go("op", func(p *sim.Proc) {
				root := tr.StartTrace("op", Op, "a")
				pop := root.Push(p)
				p.Sleep(sim.Duration(k.Rand().Int63n(int64(sim.Millisecond))))
				FromProc(p).Child("work", Disk, "d").End()
				pop()
				root.End()
			})
		}
		k.Run()
		var j, c bytes.Buffer
		if err := tr.WriteJSONL(&j); err != nil {
			t.Fatal(err)
		}
		if err := tr.WriteChrome(&c); err != nil {
			t.Fatal(err)
		}
		return j.String(), c.String()
	}
	j1, c1 := run()
	j2, c2 := run()
	if j1 != j2 {
		t.Fatalf("JSONL not deterministic:\n%s\n---\n%s", j1, j2)
	}
	if c1 != c2 {
		t.Fatalf("Chrome export not deterministic")
	}
}

func TestBreakdownTable(t *testing.T) {
	k := sim.NewKernel(1)
	defer k.Close()
	tr := NewTracer(k)
	tr.SetEnabled(true)
	done := false
	k.Go("op", func(p *sim.Proc) {
		root := tr.StartTrace("op", Op, "a")
		d := root.Child("x", Disk, "d")
		p.Sleep(4 * sim.Millisecond)
		d.End()
		root.End()
		done = true
	})
	k.Run()
	if !done {
		t.Fatal("proc did not finish")
	}
	tab := tr.BreakdownTable("phases")
	if len(tab.Rows) != 2 { // op + disk; empty phases skipped
		t.Fatalf("rows = %d, want 2\n%s", len(tab.Rows), tab)
	}
	if tab.Rows[0][0] != "op" || tab.Rows[1][0] != "disk" {
		t.Fatalf("phase order wrong\n%s", tab)
	}
	if tab.Rows[1][3] != "4.000" {
		t.Fatalf("disk p50 = %q, want 4.000\n%s", tab.Rows[1][3], tab)
	}
}

func TestDroppedTraceMarkers(t *testing.T) {
	k := sim.NewKernel(1)
	defer k.Close()
	tr := NewTracer(k)
	tr.SetEnabled(true)
	tr.SetCap(3)
	var ids []uint64
	for i := 0; i < 5; i++ {
		sp := tr.StartTrace("op", Op, "x")
		ids = append(ids, sp.TraceID())
		sp.End()
	}
	for i, id := range ids {
		want := i >= 3 // first 3 retained, last 2 dropped
		if tr.TraceDropped(id) != want {
			t.Errorf("TraceDropped(%d) = %v, want %v", id, !want, want)
		}
	}
	if tr.DroppedTraceOverflow() {
		t.Error("overflow flag set for 2 dropped traces")
	}
	dropped := tr.DroppedTraces()
	if len(dropped) != 2 || dropped[0] != ids[3] || dropped[1] != ids[4] {
		t.Errorf("DroppedTraces() = %v, want [%d %d]", dropped, ids[3], ids[4])
	}
	// A trace dropping several spans is marked once.
	sp := tr.StartTrace("op", Op, "x")
	sp.Child("a", Disk, "x").End()
	sp.Child("b", Disk, "x").End()
	sp.End()
	if n := len(tr.DroppedTraces()); n != 3 {
		t.Errorf("dropped set = %d entries, want 3", n)
	}
}

func TestTraceIDAccessors(t *testing.T) {
	k := sim.NewKernel(1)
	defer k.Close()
	tr := NewTracer(k)
	tr.SetEnabled(true)
	sp := tr.StartTrace("op", Op, "x")
	if sp.TraceID() == 0 {
		t.Fatal("live span TraceID = 0")
	}
	if sp.Ctx().TraceID() != sp.TraceID() {
		t.Error("Ctx.TraceID mismatch")
	}
	child := sp.Child("c", Disk, "x")
	if child.TraceID() != sp.TraceID() {
		t.Error("child TraceID differs from root")
	}
	child.End()
	sp.End()
	var nilA *Active
	if nilA.TraceID() != 0 {
		t.Error("nil Active TraceID != 0")
	}
	if (Ctx{}).TraceID() != 0 {
		t.Error("zero Ctx TraceID != 0")
	}
	var nilT *Tracer
	if nilT.TraceDropped(1) || nilT.DroppedTraceOverflow() || nilT.DroppedTraces() != nil {
		t.Error("nil tracer dropped-marker methods not inert")
	}
}

func TestPhaseHistogramCarriesExemplars(t *testing.T) {
	k := sim.NewKernel(1)
	defer k.Close()
	tr := NewTracer(k)
	tr.SetEnabled(true)
	done := make(chan struct{})
	k.Go("op", func(p *sim.Proc) {
		defer close(done)
		sp := tr.StartTrace("op", Op, "x")
		p.Sleep(1000)
		sp.End()
	})
	k.Run()
	<-done
	ex, ok := tr.PhaseHistogram(Op).ExemplarNear(0.99)
	if !ok || ex.Trace == 0 {
		t.Fatalf("phase histogram has no exemplar: %+v ok=%v", ex, ok)
	}
}

func TestChromeFlowEventsForAsyncEdges(t *testing.T) {
	k := sim.NewKernel(1)
	defer k.Close()
	tr := NewTracer(k)
	tr.SetEnabled(true)
	done := make(chan struct{})
	k.Go("op", func(p *sim.Proc) {
		defer close(done)
		root := tr.StartTrace("write", Op, "blade0")
		// Sync RPC: handler nests inside the rpc span — no flow pair.
		rpc := root.Child("rpc:put", Fabric, "blade0")
		h := rpc.Child("put", Coherence, "blade1")
		p.Sleep(100)
		h.End()
		rpc.End()
		// Async dispatch: instant fabric span; handler starts later on
		// another blade — exactly one flow pair.
		disp := root.Child("rpc-go:inv", Fabric, "blade0")
		disp.End()
		p.Sleep(50)
		hh := disp.Child("inv", Coherence, "blade2")
		p.Sleep(100)
		hh.End()
		root.End()
	})
	k.Run()
	<-done
	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			TS   float64 `json:"ts"`
			TID  int     `json:"tid"`
			ID   uint64  `json:"id"`
			BP   string  `json:"bp"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	var starts, finishes int
	var sTS, fTS float64
	var sID, fID uint64
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "s":
			starts++
			sTS, sID = ev.TS, ev.ID
			if ev.Name != "inv" {
				t.Errorf("flow start name = %q, want inv", ev.Name)
			}
		case "f":
			finishes++
			fTS, fID = ev.TS, ev.ID
			if ev.BP != "e" {
				t.Errorf("flow finish bp = %q, want e", ev.BP)
			}
		}
	}
	if starts != 1 || finishes != 1 {
		t.Fatalf("flow events = %d starts / %d finishes, want 1/1", starts, finishes)
	}
	if sID == 0 || sID != fID {
		t.Errorf("flow ids differ: s=%d f=%d", sID, fID)
	}
	if fTS < sTS {
		t.Errorf("flow finish ts %.3f before start ts %.3f", fTS, sTS)
	}
}
