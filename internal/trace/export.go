package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// WriteJSONL writes one JSON object per completed span, in end order.
// Because span ids, ordering and timestamps all derive from the
// deterministic kernel, two same-seed runs produce byte-identical output.
func (t *Tracer) WriteJSONL(w io.Writer) error {
	if t == nil {
		return nil
	}
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, s := range t.spans {
		if err := enc.Encode(s); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// chromeEvent is one entry of the Chrome trace_event "traceEvents" array
// (chrome://tracing, Perfetto). Times are microseconds of virtual time.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	ID   uint64         `json:"id,omitempty"` // flow-event binding ("s"/"f" pairs)
	BP   string         `json:"bp,omitempty"` // "e": bind flow end to enclosing slice
	Args map[string]any `json:"args,omitempty"`
}

// WriteChrome exports the span log as a Chrome trace_event JSON document.
// Each distinct Where value (blade, disk, port) becomes a "thread" row,
// numbered in first-seen order so the layout is deterministic.
func (t *Tracer) WriteChrome(w io.Writer) error {
	if t == nil {
		_, err := io.WriteString(w, `{"traceEvents":[]}`)
		return err
	}
	tids := make(map[string]int)
	order := []string{}
	tidOf := func(where string) int {
		if where == "" {
			where = "-"
		}
		if id, ok := tids[where]; ok {
			return id
		}
		id := len(order) + 1
		tids[where] = id
		order = append(order, where)
		return id
	}
	events := make([]chromeEvent, 0, len(t.spans)+8)
	for _, s := range t.spans {
		args := map[string]any{"trace": s.Trace, "span": s.ID}
		if s.Parent != 0 {
			args["parent"] = s.Parent
		}
		if s.Detail != "" {
			args["detail"] = s.Detail
		}
		events = append(events, chromeEvent{
			Name: s.Name,
			Cat:  string(s.Phase),
			Ph:   "X",
			TS:   float64(s.Start) / 1e3,
			Dur:  float64(s.Duration()) / 1e3,
			PID:  1,
			TID:  tidOf(s.Where),
		})
		events[len(events)-1].Args = args
	}
	// Flow events for async parent→handler edges: a fire-and-forget RPC
	// records an instant dispatch span, and its handler child starts at or
	// after the dispatch ended — on another blade's row, so without an
	// explicit arrow the causality renders as disconnected tracks. Emit an
	// "s"/"f" pair per async edge (matching name/cat/id; bp:"e" binds the
	// finish to the handler slice). Sync children nest inside their parent
	// slice and need no arrow.
	byID := make(map[[2]uint64]Span, len(t.spans))
	for _, s := range t.spans {
		byID[[2]uint64{s.Trace, s.ID}] = s
	}
	for _, s := range t.spans {
		if s.Parent == 0 {
			continue
		}
		p, ok := byID[[2]uint64{s.Trace, s.Parent}]
		if !ok || p.Phase != Fabric || s.Start < p.End {
			continue
		}
		flow := chromeEvent{Name: s.Name, Cat: "async", ID: s.ID, PID: 1}
		start, finish := flow, flow
		start.Ph = "s"
		start.TS = float64(p.End) / 1e3
		start.TID = tidOf(p.Where)
		finish.Ph = "f"
		finish.BP = "e"
		finish.TS = float64(s.Start) / 1e3
		finish.TID = tidOf(s.Where)
		events = append(events, start, finish)
	}
	// Name the rows. Metadata events carry no timestamp; viewers sort them
	// out themselves.
	meta := make([]chromeEvent, 0, len(order))
	for _, where := range order {
		meta = append(meta, chromeEvent{
			Name: "thread_name",
			Ph:   "M",
			PID:  1,
			TID:  tids[where],
			Args: map[string]any{"name": where},
		})
	}
	doc := struct {
		TraceEvents []chromeEvent `json:"traceEvents"`
	}{TraceEvents: append(meta, events...)}
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(doc); err != nil {
		return err
	}
	return bw.Flush()
}

// Summary returns a one-line description of the tracer state for status
// output: span counts, drop count, distinct traces.
func (t *Tracer) Summary() string {
	if t == nil {
		return "tracing: off"
	}
	traces := make(map[uint64]struct{}, len(t.spans))
	for _, s := range t.spans {
		traces[s.Trace] = struct{}{}
	}
	state := "off"
	if t.enabled {
		state = "on"
	}
	return fmt.Sprintf("tracing: %s — %d traces, %d spans retained (%d started, %d ended, %d dropped)",
		state, len(traces), len(t.spans), t.started, t.ended, t.dropped)
}

// PhaseCounts returns "phase=count" pairs for non-empty phases, sorted by
// canonical phase order (useful in tests and status lines).
func (t *Tracer) PhaseCounts() []string {
	if t == nil {
		return nil
	}
	out := []string{}
	for _, ph := range Phases {
		if h := t.phases[ph]; h != nil && h.Count() > 0 {
			out = append(out, fmt.Sprintf("%s=%d", ph, h.Count()))
		}
	}
	return out
}
