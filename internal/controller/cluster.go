// Package controller assembles the paper's architecture: an array of
// controller blades working "cooperatively as a single parallel computer to
// manage storage" (§2.1). Each blade couples a coherent block cache
// (internal/coherence), an N-way replication manager (internal/replication)
// and shared access to the virtualized disk pool (internal/virt over
// internal/raid over internal/disk), joined by a Fibre Channel fabric
// (internal/simnet). Any blade can serve any block of any volume.
package controller

import (
	"errors"
	"fmt"

	"repro/internal/cache"
	"repro/internal/coherence"
	"repro/internal/disk"
	"repro/internal/metrics"
	"repro/internal/qos"
	"repro/internal/raid"
	"repro/internal/replication"
	"repro/internal/sim"
	"repro/internal/simnet"
	"repro/internal/telemetry"
	"repro/internal/trace"
	"repro/internal/virt"
)

// Config sizes a cluster.
type Config struct {
	// Blades is the number of controller blades.
	Blades int
	// CacheBlocksPerBlade sizes each blade's cache (§2.2: "field
	// extendable cache memory ... pooled across controller blades").
	CacheBlocksPerBlade int
	// ReplicationN is the number of cache copies per dirty block
	// (1 = no replication, the traditional write-back exposure).
	ReplicationN int

	// Disks is the total number of drives in the farm.
	Disks int
	// DisksPerGroup is the RAID group width.
	DisksPerGroup int
	// RAIDLevel selects the group layout.
	RAIDLevel raid.Level
	// DiskSpec describes each drive; zero value = disk.DefaultSpec().
	DiskSpec disk.Spec
	// ExtentBlocks is the virtualization extent size in blocks.
	ExtentBlocks int64

	// OpDelay is CPU time per block operation on a blade.
	OpDelay sim.Duration
	// HandlerDelay is CPU time per coherence message handled.
	HandlerDelay sim.Duration
	// CPUSlots bounds a blade's concurrent operations.
	CPUSlots int
	// FabricLink is the blade interconnect; zero value = simnet.FC2G.
	FabricLink simnet.LinkSpec
	// FlushInterval drives the background destager (0 = 20 ms).
	FlushInterval sim.Duration
	// NoPeerFetch disables cache-to-cache transfers (ablation).
	NoPeerFetch bool
	// ReadAhead prefetches this many blocks after sequential read runs.
	ReadAhead int
	// FabricRetry tunes the timeout/retry/backoff loop every blade wraps
	// around its protocol and replication RPCs. Zero fields select the
	// coherence defaults (2 s deadline, 3 attempts, 500 µs backoff).
	FabricRetry simnet.RetryPolicy
	// FabricFaults, when non-nil, injects seeded drop/duplicate/delay
	// faults on every fabric link at construction (see Cluster.SetFaultPlan
	// for enabling at runtime).
	FabricFaults *simnet.FaultPlan
	// Tracer, when non-nil, opens a root span per client Read/Write; the
	// context propagates through coherence, replication, fabric and disk.
	Tracer *trace.Tracer
	// QoS, when non-nil, builds the admission/fair-queueing subsystem:
	// per-tenant token buckets at the front door, weighted-fair lanes at
	// every disk and every blade's CPU. The subsystem starts disabled;
	// flip it with Cluster.QoS.SetEnabled (yottactl `qos on`).
	QoS *qos.Config
	// FabricBatch enables the batched fabric plane at construction:
	// frame coalescing on every blade's RPC connection plus the
	// vectorized coherence protocol for client ops. Toggle at runtime
	// with Cluster.SetFabricBatch (yottactl `batch on|off`).
	FabricBatch bool
	// FabricBatchPolicy tunes frame coalescing; zero fields select the
	// simnet defaults (10 µs window, 16 messages, 64 KiB).
	FabricBatchPolicy simnet.BatchPolicy
}

// DefaultConfig returns a mid-size lab configuration: 4 blades, RAID-5
// groups of 5 over 20 disks.
func DefaultConfig() Config {
	return Config{
		Blades:              4,
		CacheBlocksPerBlade: 4096,
		ReplicationN:        2,
		Disks:               20,
		DisksPerGroup:       5,
		RAIDLevel:           raid.RAID5,
		ExtentBlocks:        256,
		OpDelay:             10 * sim.Microsecond,
		HandlerDelay:        5 * sim.Microsecond,
		CPUSlots:            4,
	}
}

// Blade is one controller blade.
type Blade struct {
	ID     int
	Addr   simnet.Addr
	Conn   *simnet.Conn
	Engine *coherence.Engine
	Repl   *replication.Manager
	Down   bool
	// Ops counts client block operations served by this blade (the E3
	// load-balance metric).
	Ops int64

	stopFlusher func()
}

// Cluster is a single-site blade cluster over a shared disk pool.
type Cluster struct {
	K      *sim.Kernel
	Net    *simnet.Network
	Cfg    Config
	Blades []*Blade
	Farm   *disk.Farm
	Groups []*raid.Group
	Pool   *virt.Pool
	// classPools holds additional storage classes (see AddClass).
	classPools map[string]*virt.Pool

	// Errors counts client operations that failed (E10 availability).
	Errors int64
	rr     int // round-robin cursor for load balancing

	// QoS is the admission/fair-queueing subsystem (nil when Config.QoS
	// was nil). Throttled ops return qos.ErrThrottled without counting
	// against Errors: a shed is the contract working, not a failure.
	QoS *qos.Manager

	// Reg is the cluster's telemetry registry: every blade, disk and link
	// registers its counters here at construction under hierarchical names
	// (blade/3/cache/hits, disk/12/queue_depth, net/link/.../bytes).
	// Registration is closures only — nothing is sampled until a scraper
	// or an exporter reads it.
	Reg *telemetry.Registry
	// opLatency records every client Read/Write's virtual-time latency
	// (registered as cluster/op_latency — the SLO watchdog's p99 source).
	opLatency *metrics.Histogram
	// fabricBuf is FabricStats's reused result slice.
	fabricBuf []BladeFabricStats
}

// poolBacking adapts the cluster's pools to the coherence Backing
// interface, resolving volume names across every storage class.
type poolBacking struct{ c *Cluster }

func (b poolBacking) volume(name string) (*virt.Volume, error) {
	if v := b.c.findVolume(name); v != nil {
		return v, nil
	}
	return nil, fmt.Errorf("controller: no volume %q", name)
}

func (b poolBacking) ReadBlock(p *sim.Proc, key cache.Key) ([]byte, error) {
	v, err := b.volume(key.Vol)
	if err != nil {
		return nil, err
	}
	return v.Read(p, key.LBA, 1)
}

func (b poolBacking) WriteBlock(p *sim.Proc, key cache.Key, data []byte) error {
	v, err := b.volume(key.Vol)
	if err != nil {
		return err
	}
	return v.Write(p, key.LBA, data)
}

// New builds a cluster on k per cfg.
func New(k *sim.Kernel, cfg Config) (*Cluster, error) {
	if cfg.Blades <= 0 {
		return nil, errors.New("controller: need at least one blade")
	}
	if cfg.DiskSpec.BlockSize == 0 {
		cfg.DiskSpec = disk.DefaultSpec()
	}
	if cfg.FabricLink == (simnet.LinkSpec{}) {
		cfg.FabricLink = simnet.FC2G
	}
	if cfg.FlushInterval == 0 {
		cfg.FlushInterval = 20 * sim.Millisecond
	}
	if cfg.ExtentBlocks == 0 {
		cfg.ExtentBlocks = 256
	}
	if cfg.DisksPerGroup <= 0 || cfg.Disks%cfg.DisksPerGroup != 0 {
		return nil, fmt.Errorf("controller: %d disks not divisible into groups of %d", cfg.Disks, cfg.DisksPerGroup)
	}

	net := simnet.New(k)
	c := &Cluster{K: k, Net: net, Cfg: cfg, classPools: make(map[string]*virt.Pool)}
	if cfg.QoS != nil {
		c.QoS = qos.NewManager(k, *cfg.QoS)
	}

	// Disk farm and RAID groups.
	c.Farm = disk.NewFarm(k, "disk", cfg.Disks, cfg.DiskSpec)
	if c.QoS != nil {
		// Each drive serves one I/O at a time; the fair queue arbitrates
		// which lane's head goes next.
		for _, d := range c.Farm.Disks {
			d.SetScheduler(c.QoS.NewFairQueue(1))
		}
	}
	var devices []virt.BlockDevice
	for g := 0; g < cfg.Disks/cfg.DisksPerGroup; g++ {
		grp, err := raid.NewGroup(k, cfg.RAIDLevel, c.Farm.Disks[g*cfg.DisksPerGroup:(g+1)*cfg.DisksPerGroup])
		if err != nil {
			return nil, err
		}
		c.Groups = append(c.Groups, grp)
		devices = append(devices, grp)
	}
	pool, err := virt.NewPool(k, cfg.ExtentBlocks, devices...)
	if err != nil {
		return nil, err
	}
	c.Pool = pool

	// Blades on the fabric.
	peers := make([]simnet.Addr, cfg.Blades)
	for i := range peers {
		peers[i] = simnet.Addr(fmt.Sprintf("blade%d", i))
		net.Connect(peers[i], "fabric", cfg.FabricLink)
	}
	backing := poolBacking{c: c}
	for i := 0; i < cfg.Blades; i++ {
		conn := simnet.NewConn(net, peers[i])
		repl := replication.New(k, conn, peers, i, cfg.ReplicationN)
		repl.Retry = cfg.FabricRetry
		engCfg := coherence.Config{
			Conn:         conn,
			Peers:        peers,
			Self:         i,
			Cache:        cache.New(cfg.CacheBlocksPerBlade),
			Backing:      backing,
			BlockSize:    cfg.DiskSpec.BlockSize,
			OpDelay:      cfg.OpDelay,
			HandlerDelay: cfg.HandlerDelay,
			CPUSlots:     cfg.CPUSlots,
			NoPeerFetch:  cfg.NoPeerFetch,
			ReadAhead:    cfg.ReadAhead,
			Retry:        cfg.FabricRetry,
		}
		if cfg.ReplicationN > 1 {
			engCfg.ReplicateDirty = repl.ReplicateDirty
			engCfg.OnClean = repl.OnClean
		}
		if c.QoS != nil {
			slots := cfg.CPUSlots
			if slots <= 0 {
				slots = 4
			}
			engCfg.CPUQueue = c.QoS.NewFairQueue(slots)
		}
		eng := coherence.New(k, engCfg)
		b := &Blade{ID: i, Addr: peers[i], Conn: conn, Engine: eng, Repl: repl}
		b.stopFlusher = eng.StartFlusher(cfg.FlushInterval, 64)
		c.Blades = append(c.Blades, b)
	}
	if cfg.FabricFaults != nil {
		c.SetFaultPlan(*cfg.FabricFaults)
	}
	if cfg.FabricBatch {
		c.SetFabricBatch(true)
	}
	c.registerTelemetry()
	return c, nil
}

// SetFabricBatch flips the batched fabric plane on every blade: frame
// coalescing on the RPC connection and the vectorized coherence protocol
// for client reads/writes. Turning it off flushes any queued frames, so
// the toggle is safe mid-run (yottactl `batch on|off`).
func (c *Cluster) SetFabricBatch(on bool) {
	for _, b := range c.Blades {
		b.Conn.SetBatching(on, c.Cfg.FabricBatchPolicy)
		b.Engine.SetBatched(on)
	}
}

// FabricBatched reports whether the batched fabric plane is active (the
// blades toggle together, so blade 0 speaks for the cluster).
func (c *Cluster) FabricBatched() bool {
	return len(c.Blades) > 0 && c.Blades[0].Engine.Batched()
}

// registerTelemetry builds the cluster's named registry: cluster-level
// aggregates plus every blade's engine/cache/rpc/replication counters,
// every disk, and the fabric's per-link byte counts.
func (c *Cluster) registerTelemetry() {
	c.Reg = telemetry.NewRegistry()
	c.opLatency = metrics.NewHistogram()
	r := c.Reg
	r.Histogram("cluster/op_latency", c.opLatency)
	r.Int("cluster/errors", func() int64 { return c.Errors })
	r.Int("cluster/ops", func() int64 {
		var tot int64
		for _, b := range c.Blades {
			tot += b.Ops
		}
		return tot
	})
	r.Int("cluster/alive_blades", func() int64 { return int64(len(c.Alive())) })
	r.Int("cluster/degraded_ops", func() int64 { return c.FabricTotals().DegradedOps })
	for _, b := range c.Blades {
		b := b
		s := r.Sub(fmt.Sprintf("blade/%d", b.ID))
		s.Int("ops", func() int64 { return b.Ops })
		s.Int("down", func() int64 {
			if b.Down {
				return 1
			}
			return 0
		})
		b.Engine.RegisterTelemetry(s)
		b.Repl.RegisterTelemetry(s.Sub("repl"))
	}
	for i, d := range c.Farm.Disks {
		d.RegisterTelemetry(r.Sub(fmt.Sprintf("disk/%d", i)))
	}
	c.Net.RegisterTelemetry(r.Sub("net"))
	if c.QoS != nil {
		c.QoS.RegisterTelemetry(r.Sub("qos"))
	}
}

// SetFaultPlan injects plan on every fabric link (a zero plan disables
// injection) — the administrative knob behind availability drills: the
// cluster keeps serving, absorbing the faults in its retry layer.
func (c *Cluster) SetFaultPlan(plan simnet.FaultPlan) {
	c.Net.SetFaultsAll(plan)
}

// BladeFabricStats is one blade's fault-handling counters.
type BladeFabricStats struct {
	Blade int
	// RPC counts this blade's client-side calls, timeouts, retries and
	// gave-up calls (coherence protocol + replication pushes combined).
	RPC simnet.RPCStats
	// DegradedOps counts operations the blade abandoned in degraded mode.
	DegradedOps int64
	// WritebackErrors counts failed destages of dirty blocks.
	WritebackErrors int64
}

func (b *Blade) fabricStats() BladeFabricStats {
	st := b.Engine.Stats()
	return BladeFabricStats{
		Blade:           b.ID,
		RPC:             b.Engine.RPCStats(),
		DegradedOps:     st.DegradedOps,
		WritebackErrors: st.WritebackErrors,
	}
}

// FabricStats reports each blade's fault-handling counters (dead blades
// included — their counters simply stop moving), ordered by blade ID. The
// returned slice is reused across calls to avoid re-allocating it on every
// status poll; copy it if you need to retain a snapshot.
func (c *Cluster) FabricStats() []BladeFabricStats {
	if c.fabricBuf == nil {
		c.fabricBuf = make([]BladeFabricStats, len(c.Blades))
	}
	for i, b := range c.Blades {
		c.fabricBuf[i] = b.fabricStats()
	}
	return c.fabricBuf
}

// FabricTotals sums the per-blade fabric counters. It reads the blades
// directly rather than materializing the FabricStats slice first.
func (c *Cluster) FabricTotals() BladeFabricStats {
	var tot BladeFabricStats
	tot.Blade = -1
	for _, b := range c.Blades {
		s := b.fabricStats()
		tot.RPC.Calls += s.RPC.Calls
		tot.RPC.Timeouts += s.RPC.Timeouts
		tot.RPC.Retries += s.RPC.Retries
		tot.RPC.GaveUp += s.RPC.GaveUp
		tot.DegradedOps += s.DegradedOps
		tot.WritebackErrors += s.WritebackErrors
	}
	return tot
}

// Stop halts background processes so the simulation's event queue drains.
func (c *Cluster) Stop() {
	for _, b := range c.Blades {
		if b.stopFlusher != nil {
			b.stopFlusher()
		}
	}
}

// BlockSize returns the cluster's block size in bytes.
func (c *Cluster) BlockSize() int { return c.Pool.BlockSize() }

// Alive returns the IDs of blades not marked down.
func (c *Cluster) Alive() []int {
	var out []int
	for _, b := range c.Blades {
		if !b.Down {
			out = append(out, b.ID)
		}
	}
	return out
}

// PickBlade returns a live blade round-robin — the host-side load
// balancing of §2.2. Returns nil if every blade is down.
func (c *Cluster) PickBlade() *Blade {
	for i := 0; i < len(c.Blades); i++ {
		b := c.Blades[c.rr%len(c.Blades)]
		c.rr++
		if !b.Down {
			return b
		}
	}
	return nil
}

// Blade returns blade id, or nil when out of range.
func (c *Cluster) Blade(id int) *Blade {
	if id < 0 || id >= len(c.Blades) {
		return nil
	}
	return c.Blades[id]
}

// admit is the QoS front door, run before an op's trace root opens or its
// latency clock starts: it stamps the caller's lane from the op's cache
// priority (preserving an explicit background tag and any tenant name the
// client set via qos.SetCtx), then charges the tenant's token bucket —
// possibly sleeping for tokens, possibly shedding with qos.ErrThrottled.
// Sheds are the contract working, so they bypass the Errors counter and
// the latency histogram. Without a QoS config the stamp still happens
// (the lane gauges are always live) and admission is free.
func (c *Cluster) admit(p *sim.Proc, priority, count int) error {
	qctx := qos.FromProc(p)
	if qctx.Lane != qos.LaneBackground {
		qctx.Lane = qos.ClampLane(priority)
	}
	qos.SetCtx(p, qctx)
	if c.QoS == nil {
		return nil
	}
	return c.QoS.Admit(p, qctx.Tenant, count)
}

// observeOp records one completed client op's latency: into the
// cluster-wide histogram always (tagged with the op's trace ID so
// histogram buckets carry exemplars back to a concrete traced op), and
// into the calling tenant's SLO histogram when QoS is configured — the
// signal the governor's per-tenant PI loops regulate against.
func (c *Cluster) observeOp(p *sim.Proc, d sim.Duration, traceID uint64) {
	c.opLatency.ObserveTraced(d, traceID)
	if c.QoS != nil {
		c.QoS.ObserveOp(qos.FromProc(p).Tenant, d)
	}
}

// Read reads count blocks of volume vol at lba through blade b, running
// per-block coherence operations in parallel.
func (c *Cluster) Read(p *sim.Proc, b *Blade, vol string, lba int64, count int, priority int) ([]byte, error) {
	if b == nil || b.Down {
		c.Errors++
		return nil, errors.New("controller: blade unavailable")
	}
	if err := c.admit(p, priority, count); err != nil {
		return nil, err
	}
	var root *trace.Active
	if c.Cfg.Tracer.Enabled() {
		root = c.Cfg.Tracer.StartTrace("read", trace.Op, fmt.Sprintf("blade%d", b.ID))
		root.Detail("%s@%d+%d", vol, lba, count)
	}
	t0 := p.Now()
	pop := root.Push(p)
	bs := c.BlockSize()
	buf := make([]byte, count*bs)
	var firstErr error
	if b.Engine.Batched() {
		// Batched plane: one vectorized coherence op resolves every block;
		// the engine fans misses out per home and keeps disk parallelism.
		keys := make([]cache.Key, count)
		for i := range keys {
			keys[i] = cache.Key{Vol: vol, LBA: lba + int64(i)}
		}
		out, err := b.Engine.ReadBlocksBatched(p, keys, priority)
		if err != nil {
			firstErr = err
		} else {
			for i, d := range out {
				copy(buf[i*bs:], d)
			}
		}
		pop()
	} else {
		grp := sim.NewGroup(c.K)
		for i := 0; i < count; i++ {
			i := i
			grp.Add(1)
			c.K.Go("read", func(q *sim.Proc) {
				defer grp.Done()
				d, err := b.Engine.ReadBlock(q, cache.Key{Vol: vol, LBA: lba + int64(i)}, priority)
				if err != nil {
					if firstErr == nil {
						firstErr = err
					}
					return
				}
				copy(buf[i*bs:], d)
			})
		}
		pop()
		grp.Wait(p)
	}
	root.End()
	c.observeOp(p, p.Now().Sub(t0), root.TraceID())
	b.Ops += int64(count)
	if firstErr != nil {
		c.Errors++
		return nil, firstErr
	}
	return buf, nil
}

// Write stores block-aligned data to volume vol at lba through blade b.
func (c *Cluster) Write(p *sim.Proc, b *Blade, vol string, lba int64, data []byte, priority int) error {
	return c.WriteR(p, b, vol, lba, data, priority, 0)
}

// WriteR is Write with an explicit per-write replication factor
// (0 = cluster default), used by the PFS per-file policies (§4).
func (c *Cluster) WriteR(p *sim.Proc, b *Blade, vol string, lba int64, data []byte, priority, replFactor int) error {
	if b == nil || b.Down {
		c.Errors++
		return errors.New("controller: blade unavailable")
	}
	bs := c.BlockSize()
	if len(data)%bs != 0 {
		return fmt.Errorf("controller: write of %d bytes not block-aligned", len(data))
	}
	count := len(data) / bs
	if err := c.admit(p, priority, count); err != nil {
		return err
	}
	var root *trace.Active
	if c.Cfg.Tracer.Enabled() {
		root = c.Cfg.Tracer.StartTrace("write", trace.Op, fmt.Sprintf("blade%d", b.ID))
		root.Detail("%s@%d+%d", vol, lba, count)
	}
	t0 := p.Now()
	pop := root.Push(p)
	var firstErr error
	if b.Engine.Batched() {
		keys := make([]cache.Key, count)
		blocks := make([][]byte, count)
		for i := range keys {
			keys[i] = cache.Key{Vol: vol, LBA: lba + int64(i)}
			blocks[i] = data[i*bs : (i+1)*bs]
		}
		firstErr = b.Engine.WriteBlocksBatched(p, keys, blocks, priority, replFactor)
		pop()
	} else {
		grp := sim.NewGroup(c.K)
		for i := 0; i < count; i++ {
			i := i
			grp.Add(1)
			c.K.Go("write", func(q *sim.Proc) {
				defer grp.Done()
				err := b.Engine.WriteBlockR(q, cache.Key{Vol: vol, LBA: lba + int64(i)}, data[i*bs:(i+1)*bs], priority, replFactor)
				if err != nil && firstErr == nil {
					firstErr = err
				}
			})
		}
		pop()
		grp.Wait(p)
	}
	root.End()
	c.observeOp(p, p.Now().Sub(t0), root.TraceID())
	b.Ops += int64(count)
	if firstErr != nil {
		c.Errors++
		return firstErr
	}
	return nil
}

// FlushAll synchronously destages every blade's dirty blocks.
func (c *Cluster) FlushAll(p *sim.Proc) {
	for _, b := range c.Blades {
		if !b.Down {
			b.Engine.FlushOnce(p, 0)
		}
	}
}
