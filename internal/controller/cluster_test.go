package controller

import (
	"bytes"
	"testing"
	"testing/quick"

	"repro/internal/disk"
	"repro/internal/raid"
	"repro/internal/sim"
	"repro/internal/simnet"
)

func smallConfig() Config {
	cfg := DefaultConfig()
	cfg.DiskSpec = disk.Spec{
		BlockSize:   512,
		Blocks:      4096,
		Seek:        2 * sim.Millisecond,
		Rotation:    sim.Millisecond,
		TransferBps: 400_000_000,
	}
	cfg.Disks = 10
	cfg.DisksPerGroup = 5
	cfg.ExtentBlocks = 16
	cfg.CacheBlocksPerBlade = 256
	return cfg
}

func newTestCluster(t *testing.T, seed int64, mutate func(*Config)) (*Cluster, *sim.Kernel) {
	t.Helper()
	k := sim.NewKernel(seed)
	cfg := smallConfig()
	if mutate != nil {
		mutate(&cfg)
	}
	c, err := New(k, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c, k
}

// run executes body and drives the simulation for a bounded stretch of
// virtual time (the cluster's background flushers tick forever, so a plain
// Run() would never return).
func run(k *sim.Kernel, body func(p *sim.Proc)) {
	done := false
	k.Go("test", func(p *sim.Proc) {
		body(p)
		done = true
	})
	k.RunFor(60 * sim.Second)
	if !done {
		panic("test body did not complete within 60s of virtual time")
	}
}

func pattern(n int, seed byte) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = byte(i)*31 + seed
	}
	return out
}

func TestClusterRoundTripThroughAnyBlade(t *testing.T) {
	c, k := newTestCluster(t, 1, nil)
	defer c.Stop()
	if _, err := c.Pool.CreateDMSD("vol", 64); err != nil {
		t.Fatal(err)
	}
	data := pattern(512*8, 5)
	run(k, func(p *sim.Proc) {
		if err := c.Write(p, c.Blade(0), "vol", 0, data, 0); err != nil {
			t.Errorf("write: %v", err)
			return
		}
		// Every blade sees the same data — "all computers access all data".
		for i := 0; i < c.Cfg.Blades; i++ {
			got, err := c.Read(p, c.Blade(i), "vol", 0, 8, 0)
			if err != nil {
				t.Errorf("read via blade %d: %v", i, err)
				return
			}
			if !bytes.Equal(got, data) {
				t.Errorf("blade %d data mismatch", i)
			}
		}
	})
}

func TestPickBladeRoundRobin(t *testing.T) {
	c, _ := newTestCluster(t, 1, nil)
	defer c.Stop()
	seen := make(map[int]int)
	for i := 0; i < 8; i++ {
		seen[c.PickBlade().ID]++
	}
	for id := 0; id < 4; id++ {
		if seen[id] != 2 {
			t.Fatalf("blade %d picked %d times, want 2: %v", id, seen[id], seen)
		}
	}
	c.Blades[1].Down = true
	for i := 0; i < 8; i++ {
		if c.PickBlade().ID == 1 {
			t.Fatal("down blade picked")
		}
	}
}

func TestBladeFailureLosesNothingWithReplication(t *testing.T) {
	c, k := newTestCluster(t, 1, func(cfg *Config) { cfg.ReplicationN = 2 })
	defer c.Stop()
	c.Pool.CreateDMSD("vol", 64)
	data := pattern(512*4, 9)
	run(k, func(p *sim.Proc) {
		// Write through blade 0 and kill it before any flush interval.
		if err := c.Write(p, c.Blade(0), "vol", 8, data, 0); err != nil {
			t.Errorf("write: %v", err)
			return
		}
		if err := c.FailBlade(p, 0); err != nil {
			t.Errorf("fail blade: %v", err)
			return
		}
		got, err := c.Read(p, c.Blade(1), "vol", 8, 4, 0)
		if err != nil {
			t.Errorf("read after failure: %v", err)
			return
		}
		if !bytes.Equal(got, data) {
			t.Error("acknowledged write lost after single blade failure with N=2")
		}
	})
}

func TestBladeFailureWithoutReplicationLosesDirtyData(t *testing.T) {
	// The contrast case: N=1 write-back caching loses unflushed data on a
	// blade failure — exactly why the paper wants N-way replication.
	c, k := newTestCluster(t, 1, func(cfg *Config) {
		cfg.ReplicationN = 1
		cfg.FlushInterval = 10 * sim.Second // effectively never
	})
	defer c.Stop()
	c.Pool.CreateDMSD("vol", 64)
	data := pattern(512, 3)
	run(k, func(p *sim.Proc) {
		c.Write(p, c.Blade(0), "vol", 5, data, 0)
		c.FailBlade(p, 0)
		got, err := c.Read(p, c.Blade(1), "vol", 5, 1, 0)
		if err != nil {
			t.Errorf("read: %v", err)
			return
		}
		if bytes.Equal(got, data) {
			t.Error("dirty data survived without replication — test premise broken")
		}
	})
}

func TestClusterContinuesAfterFailure(t *testing.T) {
	c, k := newTestCluster(t, 1, nil)
	defer c.Stop()
	c.Pool.CreateDMSD("vol", 64)
	run(k, func(p *sim.Proc) {
		c.Write(p, c.Blade(2), "vol", 0, pattern(512*2, 1), 0)
		c.FailBlade(p, 2)
		c.FailBlade(p, 3)
		// Two blades remain; I/O continues.
		b := c.PickBlade()
		if b == nil || b.Down {
			t.Error("no live blade after two failures")
			return
		}
		if err := c.Write(p, b, "vol", 10, pattern(512, 2), 0); err != nil {
			t.Errorf("write after failures: %v", err)
		}
		if _, err := c.Read(p, b, "vol", 0, 2, 0); err != nil {
			t.Errorf("read after failures: %v", err)
		}
	})
}

func TestReviveBladeRejoins(t *testing.T) {
	c, k := newTestCluster(t, 1, nil)
	defer c.Stop()
	c.Pool.CreateDMSD("vol", 64)
	run(k, func(p *sim.Proc) {
		c.FailBlade(p, 1)
		c.ReviveBlade(p, 1)
		if len(c.Alive()) != 4 {
			t.Errorf("alive = %v, want 4 blades", c.Alive())
		}
		if err := c.Write(p, c.Blade(1), "vol", 0, pattern(512, 7), 0); err != nil {
			t.Errorf("write via revived blade: %v", err)
		}
	})
}

func TestDistributedRebuildRestoresRedundancy(t *testing.T) {
	c, k := newTestCluster(t, 1, nil)
	defer c.Stop()
	c.Pool.CreateDMSD("vol", 128)
	data := pattern(512*64, 17)
	run(k, func(p *sim.Proc) {
		if err := c.Write(p, c.Blade(0), "vol", 0, data, 0); err != nil {
			t.Errorf("write: %v", err)
			return
		}
		c.FlushAll(p)
		c.Groups[0].Disks()[1].Fail()
		if err := c.DistributedRebuild(p, 0, 1); err != nil {
			t.Errorf("rebuild: %v", err)
			return
		}
		if c.Groups[0].Rebuilding(1) {
			t.Error("rebuild did not close")
		}
		// Fail a different disk: the group must still be readable, which
		// requires the first rebuild to have actually restored redundancy.
		c.Groups[0].Disks()[3].Fail()
		got, err := c.Read(p, c.Blade(1), "vol", 0, 64, 0)
		if err != nil {
			t.Errorf("read after second failure: %v", err)
			return
		}
		if !bytes.Equal(got, data) {
			t.Error("data wrong after rebuild + second disk failure")
		}
	})
}

func TestDistributedRebuildSurvivesBladeDeath(t *testing.T) {
	c, k := newTestCluster(t, 1, nil)
	defer c.Stop()
	c.Pool.CreateDMSD("vol", 128)
	run(k, func(p *sim.Proc) {
		c.Write(p, c.Blade(0), "vol", 0, pattern(512*64, 2), 0)
		c.FlushAll(p)
		c.Groups[0].Disks()[0].Fail()
		// Kill a blade shortly after the rebuild starts.
		k.After(5*sim.Millisecond, func() {
			k.Go("killer", func(q *sim.Proc) { c.FailBlade(q, 3) })
		})
		if err := c.DistributedRebuild(p, 0, 0); err != nil {
			t.Errorf("rebuild with blade death: %v", err)
			return
		}
		if c.Groups[0].Rebuilding(0) {
			t.Error("rebuild incomplete after blade death")
		}
	})
}

func TestLoadSpreadsAcrossBlades(t *testing.T) {
	c, k := newTestCluster(t, 1, nil)
	defer c.Stop()
	c.Pool.CreateDMSD("vol", 64)
	run(k, func(p *sim.Proc) {
		for i := 0; i < 32; i++ {
			b := c.PickBlade()
			c.Read(p, b, "vol", int64(i%16), 1, 0)
		}
	})
	load := c.LoadPerBlade()
	for i, l := range load {
		if l != 8 {
			t.Fatalf("blade %d load = %v, want 8 (round robin): %v", i, l, load)
		}
	}
}

// Property: arbitrary writes through arbitrary blades, then a failure of
// any single blade (with N=2), never lose acknowledged data.
func TestNoLossUnderSingleFailureProperty(t *testing.T) {
	f := func(seed int64, ops []uint16, failRaw uint8) bool {
		k := sim.NewKernel(seed)
		cfg := smallConfig()
		cfg.ReplicationN = 2
		cfg.FlushInterval = 10 * sim.Second // force reliance on replication
		c, err := New(k, cfg)
		if err != nil {
			return false
		}
		defer c.Stop()
		c.Pool.CreateDMSD("vol", 64)
		shadow := make(map[int64]byte)
		ok := true
		run(k, func(p *sim.Proc) {
			for i, op := range ops {
				if i >= 10 {
					break
				}
				blade := c.Blade(int(op) % 4)
				lba := int64(op>>4) % 32
				val := byte(op>>8) | 1
				if err := c.Write(p, blade, "vol", lba, bytes.Repeat([]byte{val}, 512), 0); err != nil {
					ok = false
					return
				}
				shadow[lba] = val
			}
			if err := c.FailBlade(p, int(failRaw)%4); err != nil {
				ok = false
				return
			}
			b := c.PickBlade()
			for lba, val := range shadow {
				got, err := c.Read(p, b, "vol", lba, 1, 0)
				if err != nil || got[0] != val {
					ok = false
					return
				}
			}
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestRAID6ClusterConfig(t *testing.T) {
	c, k := newTestCluster(t, 1, func(cfg *Config) {
		cfg.RAIDLevel = raid.RAID6
	})
	defer c.Stop()
	c.Pool.CreateDMSD("vol", 32)
	data := pattern(512*8, 4)
	run(k, func(p *sim.Proc) {
		c.Write(p, c.Blade(0), "vol", 0, data, 0)
		c.FlushAll(p)
		// RAID6 tolerates two disk failures in one group.
		c.Groups[0].Disks()[0].Fail()
		c.Groups[0].Disks()[1].Fail()
		got, err := c.Read(p, c.Blade(1), "vol", 0, 8, 0)
		if err != nil {
			t.Errorf("read with 2 disk failures: %v", err)
			return
		}
		if !bytes.Equal(got, data) {
			t.Error("RAID6 double-failure read wrong")
		}
	})
}

func TestDistributedClone(t *testing.T) {
	c, k := newTestCluster(t, 1, nil)
	defer c.Stop()
	c.Pool.CreateDMSD("src", 64)
	data := pattern(512*64, 23)
	run(k, func(p *sim.Proc) {
		if err := c.Write(p, c.Blade(0), "src", 0, data, 0); err != nil {
			t.Errorf("write: %v", err)
			return
		}
		n, err := c.DistributedClone(p, "default", "src", "copy")
		if err != nil {
			t.Errorf("clone: %v", err)
			return
		}
		if n == 0 {
			t.Error("nothing cloned")
		}
		got, err := c.Read(p, c.Blade(1), "copy", 0, 64, 0)
		if err != nil {
			t.Errorf("read clone: %v", err)
			return
		}
		if !bytes.Equal(got, data) {
			t.Error("clone content mismatch")
		}
		// The clone is independent: writing the source must not change it.
		if err := c.Write(p, c.Blade(0), "src", 0, pattern(512, 99), 0); err != nil {
			t.Errorf("post-clone write: %v", err)
			return
		}
		got2, _ := c.Read(p, c.Blade(2), "copy", 0, 1, 0)
		if !bytes.Equal(got2, data[:512]) {
			t.Error("clone not independent of source")
		}
	})
}

func TestDistributedCloneFasterWithMoreBlades(t *testing.T) {
	elapsed := func(blades int) sim.Duration {
		k := sim.NewKernel(1)
		cfg := smallConfig()
		cfg.Blades = blades
		c, err := New(k, cfg)
		if err != nil {
			t.Fatal(err)
		}
		defer c.Stop()
		c.Pool.CreateDMSD("src", 128)
		var dur sim.Duration
		run(k, func(p *sim.Proc) {
			c.Write(p, c.Blade(0), "src", 0, pattern(512*512, 1), 0)
			c.FlushAll(p)
			t0 := p.Now()
			if _, err := c.DistributedClone(p, "default", "src", "copy"); err != nil {
				t.Errorf("clone: %v", err)
				return
			}
			dur = p.Now().Sub(t0)
		})
		return dur
	}
	one := elapsed(1)
	four := elapsed(4)
	if four >= one {
		t.Fatalf("4-blade clone (%v) not faster than 1-blade (%v)", four, one)
	}
}

func TestDistributedScrub(t *testing.T) {
	c, k := newTestCluster(t, 1, nil)
	defer c.Stop()
	c.Pool.CreateDMSD("vol", 64)
	run(k, func(p *sim.Proc) {
		c.Write(p, c.Blade(0), "vol", 0, pattern(512*64, 7), 0)
		c.FlushAll(p)
		// Corrupt one block on each group behind the system's back.
		for _, g := range c.Groups {
			g.Disks()[0].CorruptBlock(1, pattern(512, 0xBB))
		}
		bad, err := c.DistributedScrub(p)
		if err != nil {
			t.Errorf("scrub: %v", err)
			return
		}
		if bad == 0 {
			t.Error("scrub missed injected corruption")
		}
		again, err := c.DistributedScrub(p)
		if err != nil || again != 0 {
			t.Errorf("second scrub: bad=%d err=%v", again, err)
		}
	})
}

func TestFaultPlanCountersSurface(t *testing.T) {
	c, k := newTestCluster(t, 1, func(cfg *Config) {
		cfg.FabricRetry = simnet.RetryPolicy{
			Timeout:    20 * sim.Millisecond,
			Attempts:   6,
			Backoff:    sim.Millisecond,
			MaxBackoff: 4 * sim.Millisecond,
			Jitter:     sim.Millisecond,
		}
		cfg.FabricFaults = &simnet.FaultPlan{DropProb: 0.05, MaxExtraDelay: sim.Millisecond}
	})
	defer c.Stop()
	c.Pool.CreateDMSD("v", 1<<16)
	if !c.Net.FaultsActive() {
		t.Fatal("FabricFaults config did not activate fault injection")
	}
	blk := make([]byte, c.BlockSize())
	run(k, func(p *sim.Proc) {
		for i := 0; i < 128; i++ {
			if err := c.Write(p, c.Blade(i%len(c.Blades)), "v", int64(i), blk, 0); err != nil {
				t.Errorf("write %d: %v", i, err)
			}
		}
		for i := 0; i < 128; i++ {
			if _, err := c.Read(p, c.PickBlade(), "v", int64(i), 1, 0); err != nil {
				t.Errorf("read %d: %v", i, err)
			}
		}
	})
	if c.Net.Faults.Dropped == 0 {
		t.Fatal("no drops injected at 5%; test is vacuous")
	}
	tot := c.FabricTotals()
	if tot.RPC.Retries == 0 {
		t.Fatalf("drops injected but FabricTotals records no retries: %+v", tot)
	}
	// Per-blade stats must sum to the totals.
	var retries int64
	for _, bs := range c.FabricStats() {
		retries += bs.RPC.Retries
	}
	if retries != tot.RPC.Retries {
		t.Fatalf("per-blade retries %d != total %d", retries, tot.RPC.Retries)
	}
	// Disabling the plan stops injection.
	c.SetFaultPlan(simnet.FaultPlan{})
	if c.Net.FaultsActive() {
		t.Fatal("zero plan left fault injection active")
	}
}
