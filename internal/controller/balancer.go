package controller

import (
	"repro/internal/balance"
	"repro/internal/cache"
	"repro/internal/coherence"
	"repro/internal/simnet"
	"repro/internal/telemetry"
)

// HomeBlade returns the blade currently homing block lba of vol — the
// routing a SAN host with a static path to "its" controller would use
// (§2.2). Migration overrides are visible through any live engine's view.
func (c *Cluster) HomeBlade(vol string, lba int64) int {
	key := cache.Key{Vol: vol, LBA: lba}
	for _, b := range c.Blades {
		if b.Down {
			continue
		}
		if h, err := b.Engine.Home(key); err == nil {
			return h
		}
	}
	return -1
}

// NewBalancer wires a hot-spot rebalance controller to this cluster: it
// gets its own fabric endpoint (migrations are real protocol RPCs, subject
// to the same link model and retry policy as blade traffic), the blades'
// engines for heat inspection, and scr's per-blade load series as the
// feedback signal. Counters register under balance/*. The caller starts
// and stops the returned controller.
func (c *Cluster) NewBalancer(scr *telemetry.Scraper, cfg balance.Config) *balance.Controller {
	const addr = simnet.Addr("balancer")
	c.Net.Connect(addr, "fabric", c.Cfg.FabricLink)
	conn := simnet.NewConn(c.Net, addr)
	engines := make([]*coherence.Engine, len(c.Blades))
	peers := make([]simnet.Addr, len(c.Blades))
	for i, b := range c.Blades {
		engines[i] = b.Engine
		peers[i] = b.Addr
	}
	ctl := balance.New(cfg, balance.Deps{
		K:       c.K,
		Scraper: scr,
		Engines: engines,
		Alive:   c.Alive,
		Conn:    conn,
		Peers:   peers,
		Tracer:  c.Cfg.Tracer,
		Retry:   coherence.NormalizeRetry(c.Cfg.FabricRetry),
	})
	ctl.RegisterTelemetry(c.Reg.Sub("balance"))
	return ctl
}
