package controller

import (
	"errors"
	"fmt"

	"repro/internal/cache"
	"repro/internal/coherence"
	"repro/internal/hotcache"
	"repro/internal/sim"
	"repro/internal/simnet"
	"repro/internal/trace"
)

// NewHotCache wires the DistCache-style upper cache tier to this cluster:
// one cache node per blade over the blades' own RPC connections (the
// write-through invalidations ride the same fabric and retry policy as
// coherence traffic), with the exclusive-grant hook installed on every
// engine. Counters register under hotcache/*. The tier starts disabled;
// SetEnabled (or yottactl `rebalance on` with the hotcache scheme) arms
// it.
func (c *Cluster) NewHotCache(cfg hotcache.Config) *hotcache.Tier {
	if cfg.OpDelay <= 0 {
		cfg.OpDelay = c.Cfg.OpDelay
	}
	engines := make([]*coherence.Engine, len(c.Blades))
	conns := make([]*simnet.Conn, len(c.Blades))
	peers := make([]simnet.Addr, len(c.Blades))
	for i, b := range c.Blades {
		engines[i] = b.Engine
		conns[i] = b.Conn
		peers[i] = b.Addr
	}
	t := hotcache.New(cfg, hotcache.Deps{
		K:       c.K,
		Engines: engines,
		Conns:   conns,
		Peers:   peers,
		Retry:   coherence.NormalizeRetry(c.Cfg.FabricRetry),
		Down:    func(blade int) bool { return c.Blades[blade].Down },
	})
	t.RegisterTelemetry(c.Reg.Sub("hotcache"))
	return t
}

// ReadCached reads count blocks through blade b's cache node in tier —
// the upper-layer counterpart of Read. Hits are served from the node's
// store; misses read through the blade's coherence engine and fill the
// node. Accounting (admission, op latency, per-blade Ops) matches Read,
// so the load-balance metrics compare the two paths fairly.
func (c *Cluster) ReadCached(p *sim.Proc, tier *hotcache.Tier, b *Blade, vol string, lba int64, count int, priority int) ([]byte, error) {
	if b == nil || b.Down {
		c.Errors++
		return nil, errors.New("controller: blade unavailable")
	}
	if err := c.admit(p, priority, count); err != nil {
		return nil, err
	}
	var root *trace.Active
	if c.Cfg.Tracer.Enabled() {
		root = c.Cfg.Tracer.StartTrace("read-cached", trace.Op, fmt.Sprintf("blade%d", b.ID))
		root.Detail("%s@%d+%d", vol, lba, count)
	}
	t0 := p.Now()
	pop := root.Push(p)
	node := tier.Node(b.ID)
	bs := c.BlockSize()
	buf := make([]byte, count*bs)
	var firstErr error
	if count == 1 {
		// The hot path: single-block hot-key reads. No fan-out process.
		d, err := node.Read(p, cache.Key{Vol: vol, LBA: lba}, priority)
		if err != nil {
			firstErr = err
		} else {
			copy(buf, d)
		}
		pop()
	} else {
		grp := sim.NewGroup(c.K)
		for i := 0; i < count; i++ {
			i := i
			grp.Add(1)
			c.K.Go("read-cached", func(q *sim.Proc) {
				defer grp.Done()
				d, err := node.Read(q, cache.Key{Vol: vol, LBA: lba + int64(i)}, priority)
				if err != nil {
					if firstErr == nil {
						firstErr = err
					}
					return
				}
				copy(buf[i*bs:], d)
			})
		}
		pop()
		grp.Wait(p)
	}
	root.End()
	c.observeOp(p, p.Now().Sub(t0), root.TraceID())
	b.Ops += int64(count)
	if firstErr != nil {
		c.Errors++
		return nil, firstErr
	}
	return buf, nil
}
