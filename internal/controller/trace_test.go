package controller

import (
	"bytes"
	"testing"

	"repro/internal/sim"
	"repro/internal/trace"
)

// tracedRun drives a small write+read workload on a traced cluster and
// returns the tracer.
func tracedRun(t *testing.T, seed int64) *trace.Tracer {
	t.Helper()
	k := sim.NewKernel(seed)
	cfg := smallConfig()
	// Tiny caches: ops must write back and miss to disk, so disk-phase
	// spans appear inside the traced ops (a fully cached working set
	// would only destage via the untraced background flusher).
	cfg.CacheBlocksPerBlade = 16
	tr := trace.NewTracer(k)
	tr.SetEnabled(true)
	cfg.Tracer = tr
	c, err := New(k, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	if _, err := c.Pool.CreateDMSD("vol", 64); err != nil {
		t.Fatal(err)
	}
	data := pattern(512*8, 3)
	run(k, func(p *sim.Proc) {
		// All writes through blade 0: 64 blocks through a 16-block cache
		// forces eviction writebacks inside the traced ops.
		for i := 0; i < 8; i++ {
			if err := c.Write(p, c.Blade(0), "vol", int64(i*8), data, 0); err != nil {
				t.Errorf("write %d: %v", i, err)
				return
			}
		}
		// Reads through a different blade: the early blocks are destaged
		// and cached nowhere, so the reads miss to disk; the rest force
		// coherence traffic.
		for i := 0; i < 8; i++ {
			if _, err := c.Read(p, c.Blade(1), "vol", int64(i*8), 8, 0); err != nil {
				t.Errorf("read %d: %v", i, err)
				return
			}
		}
	})
	return tr
}

// End-to-end: a traced cluster workload produces op roots with fabric,
// coherence, queue and disk phases nested beneath them.
func TestClusterTracePhases(t *testing.T) {
	tr := tracedRun(t, 1)
	spans := tr.Spans()
	if len(spans) == 0 {
		t.Fatal("no spans recorded")
	}
	// Every op root is a read or write; 16 client ops were issued.
	if n := tr.PhaseHistogram(trace.Op).Count(); n != 16 {
		t.Fatalf("op spans = %d, want 16", n)
	}
	for _, ph := range []trace.Phase{trace.Queue, trace.Coherence, trace.Fabric, trace.Disk} {
		if tr.PhaseHistogram(ph).Count() == 0 {
			t.Fatalf("phase %q recorded no spans", ph)
		}
	}
	// Replication is on (N=2) and writes are dirty: repl spans must exist.
	if tr.PhaseHistogram(trace.Repl).Count() == 0 {
		t.Fatal("no replication spans despite ReplicationN=2")
	}

	// Structural checks: every non-root span's parent exists and shares
	// its trace id; roots are Op spans.
	byID := make(map[uint64]trace.Span, len(spans))
	for _, s := range spans {
		byID[s.ID] = s
	}
	for _, s := range spans {
		if s.Parent == 0 {
			if s.Phase != trace.Op {
				t.Fatalf("root span with non-op phase: %+v", s)
			}
			continue
		}
		par, ok := byID[s.Parent]
		if !ok {
			t.Fatalf("span %d has unknown parent %d", s.ID, s.Parent)
		}
		if par.Trace != s.Trace {
			t.Fatalf("span %d trace %d != parent trace %d", s.ID, s.Trace, par.Trace)
		}
		if s.Start < par.Start || s.End > par.End {
			t.Fatalf("span %d [%d,%d] outside parent [%d,%d]", s.ID, s.Start, s.End, par.Start, par.End)
		}
	}
}

// Same-seed traced runs must export byte-identical JSONL.
func TestClusterTraceDeterministic(t *testing.T) {
	var out [2]bytes.Buffer
	for i := range out {
		tr := tracedRun(t, 42)
		if err := tr.WriteJSONL(&out[i]); err != nil {
			t.Fatal(err)
		}
	}
	if out[0].Len() == 0 {
		t.Fatal("empty trace")
	}
	if !bytes.Equal(out[0].Bytes(), out[1].Bytes()) {
		t.Fatal("same-seed traced runs differ")
	}
}

// Tracing must not perturb simulation timing: the same workload with and
// without a tracer finishes at the identical virtual instant.
func TestTracingDoesNotPerturbTiming(t *testing.T) {
	endTime := func(traced bool) sim.Time {
		k := sim.NewKernel(9)
		cfg := smallConfig()
		if traced {
			tr := trace.NewTracer(k)
			tr.SetEnabled(true)
			cfg.Tracer = tr
		}
		c, err := New(k, cfg)
		if err != nil {
			t.Fatal(err)
		}
		defer c.Stop()
		if _, err := c.Pool.CreateDMSD("vol", 64); err != nil {
			t.Fatal(err)
		}
		data := pattern(512*8, 7)
		var end sim.Time
		run(k, func(p *sim.Proc) {
			for i := 0; i < 4; i++ {
				if err := c.Write(p, c.Blade(i%c.Cfg.Blades), "vol", int64(i*8), data, 0); err != nil {
					t.Errorf("write: %v", err)
					return
				}
				if _, err := c.Read(p, c.Blade((i+1)%c.Cfg.Blades), "vol", int64(i*8), 8, 0); err != nil {
					t.Errorf("read: %v", err)
					return
				}
			}
			end = p.Now()
		})
		return end
	}
	plain := endTime(false)
	traced := endTime(true)
	if plain != traced {
		t.Fatalf("tracing changed timing: untraced end %v, traced end %v", plain, traced)
	}
}
