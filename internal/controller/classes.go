package controller

import (
	"fmt"

	"repro/internal/disk"
	"repro/internal/qos"
	"repro/internal/raid"
	"repro/internal/sim"
	"repro/internal/virt"
)

// StorageClass describes one redundancy tier of the farm (§4: file
// metadata can "override the automatic selection of RAID type" — each
// class is a set of RAID groups of one level, carved into its own pool).
type StorageClass struct {
	Name          string
	Level         raid.Level
	Disks         int
	DisksPerGroup int
}

// AddClass carves a new storage class out of additional drives: it builds
// the class's RAID groups and pool and registers them with the cluster.
func (c *Cluster) AddClass(sc StorageClass) error {
	if sc.DisksPerGroup <= 0 || sc.Disks%sc.DisksPerGroup != 0 {
		return fmt.Errorf("controller: class %q: %d disks not divisible by %d", sc.Name, sc.Disks, sc.DisksPerGroup)
	}
	if _, exists := c.classPools[sc.Name]; exists {
		return fmt.Errorf("controller: class %q exists", sc.Name)
	}
	farm := disk.NewFarm(c.K, "disk."+sc.Name, sc.Disks, c.Cfg.DiskSpec)
	c.Farm.Disks = append(c.Farm.Disks, farm.Disks...)
	var devices []virt.BlockDevice
	for g := 0; g < sc.Disks/sc.DisksPerGroup; g++ {
		grp, err := raid.NewGroup(c.K, sc.Level, farm.Disks[g*sc.DisksPerGroup:(g+1)*sc.DisksPerGroup])
		if err != nil {
			return err
		}
		c.Groups = append(c.Groups, grp)
		devices = append(devices, grp)
	}
	pool, err := virt.NewPool(c.K, c.Cfg.ExtentBlocks, devices...)
	if err != nil {
		return err
	}
	c.classPools[sc.Name] = pool
	return nil
}

// PoolFor returns the pool backing a storage class ("" or "default" = the
// cluster's primary pool).
func (c *Cluster) PoolFor(class string) (*virt.Pool, error) {
	if class == "" || class == "default" {
		return c.Pool, nil
	}
	p, ok := c.classPools[class]
	if !ok {
		return nil, fmt.Errorf("controller: no storage class %q", class)
	}
	return p, nil
}

// Classes lists the extra storage classes (beyond "default").
func (c *Cluster) Classes() []string {
	out := make([]string, 0, len(c.classPools))
	for name := range c.classPools {
		out = append(out, name)
	}
	return out
}

// CreateDMSD creates a demand-mapped device in the named class.
func (c *Cluster) CreateDMSD(class, name string, virtExtents int64) (*virt.Volume, error) {
	pool, err := c.PoolFor(class)
	if err != nil {
		return nil, err
	}
	if c.findVolume(name) != nil {
		return nil, fmt.Errorf("controller: volume %q exists", name)
	}
	return pool.CreateDMSD(name, virtExtents)
}

// CreateVolume creates a thick volume in the named class.
func (c *Cluster) CreateVolume(class, name string, sizeBlocks int64) (*virt.Volume, error) {
	pool, err := c.PoolFor(class)
	if err != nil {
		return nil, err
	}
	if c.findVolume(name) != nil {
		return nil, fmt.Errorf("controller: volume %q exists", name)
	}
	return pool.CreateVolume(name, sizeBlocks)
}

// findVolume resolves a volume name across every pool.
func (c *Cluster) findVolume(name string) *virt.Volume {
	if v, ok := c.Pool.Volumes()[name]; ok {
		return v
	}
	for _, pool := range c.classPools {
		if v, ok := pool.Volumes()[name]; ok {
			return v
		}
	}
	return nil
}

// ReadBlocks serves a block read through a load-balanced blade — the
// pfs.BlockIO shape (see ClusterIO).
func (c *Cluster) ReadBlocks(p *sim.Proc, vol string, lba int64, count int, priority int) ([]byte, error) {
	return c.Read(p, c.PickBlade(), vol, lba, count, priority)
}

// WriteBlocks serves a block write through a load-balanced blade.
func (c *Cluster) WriteBlocks(p *sim.Proc, vol string, lba int64, data []byte, priority, replFactor int) error {
	return c.WriteR(p, c.PickBlade(), vol, lba, data, priority, replFactor)
}

// CloneComputePerExtent is the per-extent copy CPU charged to the blade
// performing it (checksum + move engine), the §2.4 "mirror creation" cost
// that distributing over blades parallelizes.
var CloneComputePerExtent = 2 * sim.Millisecond

// DistributedClone creates dstName in the named class as a full physical
// copy of srcVol (§2.4: mirror creation and point-in-time copy run as
// distributed storage services). Dirty cache data is destaged first so the
// copy is crash-consistent; extent copies are then spread over every live
// blade. Returns the number of extents copied.
func (c *Cluster) DistributedClone(p *sim.Proc, class, srcVol, dstName string) (int, error) {
	src := c.findVolume(srcVol)
	if src == nil {
		return 0, fmt.Errorf("controller: no volume %q", srcVol)
	}
	dst, err := c.CreateDMSD(class, dstName, src.VirtExtents())
	if err != nil {
		return 0, err
	}
	c.FlushAll(p)
	pool, err := c.PoolFor(class)
	if err != nil {
		return 0, err
	}
	extents := src.MappedExtentIndexes()
	eb := pool.ExtentBlocks()
	next := 0
	var firstErr error
	grp := sim.NewGroup(c.K)
	for _, b := range c.Blades {
		b := b
		if b.Down {
			continue
		}
		grp.Add(1)
		c.K.Go(fmt.Sprintf("clone/blade%d", b.ID), func(q *sim.Proc) {
			defer grp.Done()
			// Point-in-time copy is background service traffic (§2.4).
			qos.TagBackground(q)
			for {
				if b.Down || next >= len(extents) || firstErr != nil {
					return
				}
				ext := extents[next]
				next++
				b.Engine.Busy(q, CloneComputePerExtent)
				data, err := src.Read(q, ext*eb, int(eb))
				if err != nil {
					if firstErr == nil {
						firstErr = err
					}
					return
				}
				if err := dst.Write(q, ext*eb, data); err != nil {
					if firstErr == nil {
						firstErr = err
					}
					return
				}
			}
		})
	}
	grp.Wait(p)
	if firstErr != nil {
		return 0, firstErr
	}
	return len(extents), nil
}
