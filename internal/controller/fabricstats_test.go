package controller

import (
	"testing"

	"repro/internal/sim"
)

// workCluster drives a short write/read burst so the fabric counters move.
func workCluster(t *testing.T, c *Cluster, k *sim.Kernel) {
	t.Helper()
	if _, err := c.Pool.CreateDMSD("v", 1<<16); err != nil {
		t.Fatal(err)
	}
	run(k, func(p *sim.Proc) {
		buf := pattern(c.BlockSize(), 0x5a)
		for i := 0; i < 64; i++ {
			b := c.PickBlade()
			if err := c.Write(p, b, "v", int64(i), buf, 0); err != nil {
				t.Errorf("write %d: %v", i, err)
				return
			}
			if _, err := c.Read(p, c.PickBlade(), "v", int64(i), 1, 0); err != nil {
				t.Errorf("read %d: %v", i, err)
				return
			}
		}
	})
}

func TestFabricStatsReusesBuffer(t *testing.T) {
	c, k := newTestCluster(t, 1, nil)
	workCluster(t, c, k)

	a := c.FabricStats()
	b := c.FabricStats()
	if &a[0] != &b[0] {
		t.Fatal("FabricStats allocated a fresh slice on the second call")
	}
	if len(a) != len(c.Blades) {
		t.Fatalf("FabricStats returned %d entries for %d blades", len(a), len(c.Blades))
	}
	for i, s := range a {
		if s.Blade != i {
			t.Fatalf("FabricStats[%d].Blade = %d, want %d (must be ordered by ID)", i, s.Blade, i)
		}
	}
}

func TestFabricTotalsMatchesPerBladeSum(t *testing.T) {
	c, k := newTestCluster(t, 2, nil)
	workCluster(t, c, k)

	var want BladeFabricStats
	want.Blade = -1
	for _, s := range c.FabricStats() {
		want.RPC.Calls += s.RPC.Calls
		want.RPC.Timeouts += s.RPC.Timeouts
		want.RPC.Retries += s.RPC.Retries
		want.RPC.GaveUp += s.RPC.GaveUp
		want.DegradedOps += s.DegradedOps
		want.WritebackErrors += s.WritebackErrors
	}
	got := c.FabricTotals()
	if got != want {
		t.Fatalf("FabricTotals = %+v, want per-blade sum %+v", got, want)
	}
	if got.RPC.Calls == 0 {
		t.Fatal("workload moved no fabric calls; totals test is vacuous")
	}
}
