package controller

import (
	"errors"
	"fmt"

	"repro/internal/cache"
	"repro/internal/qos"
	"repro/internal/sim"
)

// FailBlade kills blade id: its network port goes dark, its cache contents
// (including unreplicated dirty data) are lost, and the survivors run the
// recovery protocol — replicated dirty blocks are destaged by their
// surviving holders (§6.1), then every survivor flushes and cold-starts its
// cache and directory under the new membership.
func (c *Cluster) FailBlade(p *sim.Proc, id int) error {
	return c.FailBlades(p, id)
}

// FailBlades kills several blades at the same instant — the correlated
// failure case N-way replication is sized against (§6.1): no recovery runs
// between the losses, so dirty blocks whose entire copy set died are gone.
func (c *Cluster) FailBlades(p *sim.Proc, ids ...int) error {
	var dead []int
	for _, id := range ids {
		b := c.Blade(id)
		if b == nil {
			return fmt.Errorf("controller: no blade %d", id)
		}
		if b.Down {
			continue
		}
		b.Down = true
		b.Engine.SetDown(true)
		c.Net.SetDown(b.Addr, true)
		// The dead blade's cache is gone.
		b.Engine.Cache().Clear()
		dead = append(dead, id)
	}
	if len(dead) == 0 {
		return nil
	}
	return c.recoverMembership(p, dead)
}

// recoverMembership re-forms the cluster after the blades in dead were lost.
func (c *Cluster) recoverMembership(p *sim.Proc, dead []int) error {
	alive := c.Alive()
	if len(alive) == 0 {
		return errors.New("controller: all blades down")
	}
	backing := poolBacking{c: c}
	// Step 1: survivors destage every dead blade's replicated dirty blocks.
	for _, id := range alive {
		sb := c.Blades[id]
		for _, d := range dead {
			if _, err := sb.Repl.RecoverFor(p, d, func(q *sim.Proc, key cache.Key, data []byte) error {
				return backing.WriteBlock(q, key, data)
			}); err != nil {
				return err
			}
		}
	}
	// Step 2: survivors flush their own dirty data and cold-start caches
	// and directory shards under the new membership.
	for _, id := range alive {
		sb := c.Blades[id]
		sb.Engine.Recover(p, alive)
		sb.Repl.SetAlive(alive)
	}
	return nil
}

// ReviveBlade brings a previously failed blade back (empty cache) and
// re-forms membership to include it.
func (c *Cluster) ReviveBlade(p *sim.Proc, id int) error {
	b := c.Blade(id)
	if b == nil {
		return fmt.Errorf("controller: no blade %d", id)
	}
	if !b.Down {
		return nil
	}
	b.Down = false
	b.Engine.SetDown(false)
	c.Net.SetDown(b.Addr, false)
	b.stopFlusher = b.Engine.StartFlusher(c.Cfg.FlushInterval, 64)
	alive := c.Alive()
	for _, id := range alive {
		sb := c.Blades[id]
		sb.Engine.Recover(p, alive)
		sb.Repl.SetAlive(alive)
		sb.Repl.DropOwner(b.ID)
	}
	return nil
}

// RebuildComputePerChunk is the XOR/RS reconstruction CPU time a blade
// spends per rebuild chunk. With one blade this compute serializes with
// the disk I/O; spread over many blades it overlaps, which is why
// distributed rebuilds finish sooner (§2.4) until the disks themselves
// become the limit.
var RebuildComputePerChunk = 12 * sim.Millisecond

// DistributedRebuild reconstructs a failed disk of group g across the live
// blades (§2.4): rebuild chunks are a shared work queue; each live blade
// contributes one worker, and a blade that dies mid-rebuild simply stops
// taking chunks — the rest finish the queue. Returns when the rebuild
// completes.
func (c *Cluster) DistributedRebuild(p *sim.Proc, g int, diskIdx int) error {
	if g < 0 || g >= len(c.Groups) {
		return fmt.Errorf("controller: no group %d", g)
	}
	group := c.Groups[g]
	chunks, err := group.StartRebuild(diskIdx)
	if err != nil {
		return err
	}
	next := int64(0)
	var firstErr error
	grp := sim.NewGroup(c.K)
	for _, b := range c.Blades {
		b := b
		if b.Down {
			continue
		}
		grp.Add(1)
		c.K.Go(fmt.Sprintf("rebuild/blade%d", b.ID), func(q *sim.Proc) {
			defer grp.Done()
			// Rebuild is the canonical §2.4 background service: its CPU
			// charges and disk I/O compete in the background lane.
			qos.TagBackground(q)
			for {
				if b.Down || next >= chunks {
					return
				}
				chunk := next
				next++
				b.Engine.Busy(q, RebuildComputePerChunk)
				if err := group.RebuildChunk(q, diskIdx, chunk); err != nil {
					if firstErr == nil {
						firstErr = err
					}
					return
				}
			}
		})
	}
	grp.Wait(p)
	if firstErr != nil {
		return firstErr
	}
	// Chunks abandoned by blades that died mid-queue: finish them inline
	// (completed chunks return immediately).
	for chunk := int64(0); chunk < chunks && group.Rebuilding(diskIdx); chunk++ {
		if err := group.RebuildChunk(p, diskIdx, chunk); err != nil {
			return err
		}
	}
	return nil
}

// LoadPerBlade returns each blade's served-operation count — the E3
// hot-spot metric (coefficient of variation near zero = balanced).
func (c *Cluster) LoadPerBlade() []float64 {
	out := make([]float64, len(c.Blades))
	for i, b := range c.Blades {
		out[i] = float64(b.Ops)
	}
	return out
}

// CacheStats aggregates hit/miss counters across blades.
func (c *Cluster) CacheStats() (hits, misses int64) {
	for _, b := range c.Blades {
		st := b.Engine.Cache().Stats()
		hits += st.Hits
		misses += st.Misses
	}
	return
}

// DistributedScrub verifies (and repairs) parity across every RAID group,
// sharding stripe ranges over the live blades — the background maintenance
// service of §2.4 that "goes faster and does not impede active I/O rates"
// as blades are added. Returns the number of inconsistent stripes repaired.
func (c *Cluster) DistributedScrub(p *sim.Proc) (int64, error) {
	var total int64
	var firstErr error
	grp := sim.NewGroup(c.K)
	type job struct {
		g      int
		lo, hi int64
	}
	var jobs []job
	const shard = 512
	for gi, g := range c.Groups {
		for lo := int64(0); lo < g.Stripes(); lo += shard {
			hi := lo + shard
			if hi > g.Stripes() {
				hi = g.Stripes()
			}
			jobs = append(jobs, job{g: gi, lo: lo, hi: hi})
		}
	}
	next := 0
	for _, b := range c.Blades {
		b := b
		if b.Down {
			continue
		}
		grp.Add(1)
		c.K.Go(fmt.Sprintf("scrub/blade%d", b.ID), func(q *sim.Proc) {
			defer grp.Done()
			qos.TagBackground(q)
			for {
				if b.Down || next >= len(jobs) || firstErr != nil {
					return
				}
				j := jobs[next]
				next++
				b.Engine.Busy(q, RebuildComputePerChunk)
				bad, err := c.Groups[j.g].ScrubRange(q, j.lo, j.hi)
				if err != nil {
					if firstErr == nil {
						firstErr = err
					}
					return
				}
				total += bad
			}
		})
	}
	grp.Wait(p)
	return total, firstErr
}
