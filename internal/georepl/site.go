package georepl

import (
	"fmt"
	"strings"

	"repro/internal/pfs"
	"repro/internal/sim"
	"repro/internal/simnet"
)

// Stats counts one site's geo activity.
type Stats struct {
	LocalReads    int64 // served entirely from this site
	RemoteReads   int64 // required a WAN fetch
	PrefetchHits  int64 // served from previously prefetched ranges
	Promotions    int64 // files promoted to full local replicas
	WritesHome    int64 // writes served as home site
	WritesProxy   int64 // writes forwarded to a remote home
	SyncShips     int64
	AsyncShips    int64
	Invalidations int64
}

// Site is one geography in the federation.
type Site struct {
	Name string
	Down bool

	fed  *Federation
	fs   *pfs.FS
	conn *simnet.Conn

	// ranges tracks which byte ranges of remote-homed files have been
	// fetched locally (partial replicas built by prefetch).
	ranges map[string]*rangeSet
	// accesses counts reads per remote file, for hot promotion (§7.1:
	// "the system would recognize files that are commonly accessed at
	// multiple locations and automatically replicate copies").
	accesses map[string]int
	// journals hold pending async shipments per destination site (§7.2:
	// writes ship "in the order of the writes").
	journals map[string]*journal
	// promoting guards against duplicate in-flight promotion pulls.
	promoting map[string]bool

	stopShip func()
	Stats    Stats
}

// FS exposes the site's local file system (tests and tooling).
func (s *Site) FS() *pfs.FS { return s.fs }

type shipment struct {
	path string
	off  int64
	data []byte
}

type journal struct {
	pending []shipment
}

// JournalDepth returns the number of writes not yet shipped to dst — the
// measurable RPO exposure of async mode.
func (s *Site) JournalDepth(dst string) int {
	j, ok := s.journals[dst]
	if !ok {
		return 0
	}
	return len(j.pending)
}

// Wire payloads.
type readReq struct {
	Path string
	Off  int64
	N    int64
}
type readResp struct {
	Data []byte
	Size int64
	Err  string
}
type writeReq struct {
	Path string
	Off  int64
	Data []byte
}
type writeResp struct{ Err string }
type shipReq struct {
	Path string
	Off  int64
	Data []byte
}
type shipResp struct{ Err string }
type invalidateReq struct{ Path string }
type invalidateResp struct{}
type pullReq struct{ Path string }
type pullResp struct {
	Data []byte
	Err  string
}

// createLocal makes path (and parent directories) on fs.
func createLocal(fs *pfs.FS, path string, policy pfs.Policy) error {
	if i := strings.LastIndex(path, "/"); i > 0 {
		if err := fs.MkdirAll(path[:i]); err != nil {
			return err
		}
	}
	_, err := fs.Create(path, policy)
	return err
}

// Create registers a new file homed at this site.
func (s *Site) Create(p *sim.Proc, path string, policy pfs.Policy) error {
	if s.Down {
		return ErrSiteDown
	}
	if _, exists := s.fed.meta[path]; exists {
		return fmt.Errorf("%w: %q", ErrFileExists, path)
	}
	if err := createLocal(s.fs, path, policy); err != nil {
		return err
	}
	s.fed.meta[path] = &fileMeta{
		home:          s.Name,
		cacheReplicas: make(map[string]bool),
		duraReplicas:  make(map[string]bool),
		policy:        policy,
	}
	return nil
}

// SetPolicy updates a file's geographic policy at the metadata center and
// the home site's inode.
func (s *Site) SetPolicy(path string, policy pfs.Policy) error {
	m, ok := s.fed.meta[path]
	if !ok {
		return ErrNoFile
	}
	m.policy = policy
	home := s.fed.sites[m.home]
	return home.fs.SetPolicy(path, policy)
}

// duraTargets resolves the durability sites for a file per its policy.
func (s *Site) duraTargets(m *fileMeta) []string {
	if m.policy.Geo.Mode == pfs.GeoNone {
		return nil
	}
	if len(m.policy.Geo.Sites) > 0 {
		return m.policy.Geo.Sites
	}
	var out []string
	copies := m.policy.Geo.Copies
	for name := range s.fed.sites {
		if name == m.home {
			continue
		}
		out = append(out, name)
		if copies > 0 && len(out) >= copies {
			break
		}
	}
	return out
}

// WriteAt writes through the single system image: if this site is the
// file's home, the write applies locally and then replicates per policy;
// otherwise it is forwarded to the home over the WAN.
func (s *Site) WriteAt(p *sim.Proc, path string, off int64, data []byte) error {
	if s.Down {
		return ErrSiteDown
	}
	m, ok := s.fed.meta[path]
	if !ok {
		return fmt.Errorf("%w: %q", ErrNoFile, path)
	}
	if m.home != s.Name {
		s.Stats.WritesProxy++
		raw, err := s.conn.CallTimeout(p, simnet.Addr(m.home), "geo.write",
			writeReq{Path: path, Off: off, Data: data}, ctrlSize+len(data), 30*sim.Second)
		if err != nil {
			return fmt.Errorf("georepl: forward to home %s: %w", m.home, err)
		}
		if resp := raw.(writeResp); resp.Err != "" {
			return fmt.Errorf("georepl: %s", resp.Err)
		}
		return nil
	}
	return s.writeAsHome(p, path, m, off, data)
}

// writeAsHome applies the write locally and runs the §7.2 replication.
func (s *Site) writeAsHome(p *sim.Proc, path string, m *fileMeta, off int64, data []byte) error {
	s.Stats.WritesHome++
	if _, err := s.fs.WriteAt(p, path, off, data); err != nil {
		return err
	}
	if end := off + int64(len(data)); end > m.size {
		m.size = end
	}
	// Cache replicas at other sites are now stale: invalidate them
	// (fire-and-forget; the sites drop their copies).
	for site := range m.cacheReplicas {
		s.conn.Go(p, simnet.Addr(site), "geo.invalidate", invalidateReq{Path: path}, ctrlSize, 0)
		delete(m.cacheReplicas, site)
		s.Stats.Invalidations++
	}
	// Durability replication per policy.
	switch m.policy.Geo.Mode {
	case pfs.GeoSync:
		grp := sim.NewGroup(s.fed.k)
		var firstErr error
		for _, dst := range s.duraTargets(m) {
			dst := dst
			m.duraReplicas[dst] = true
			grp.Add(1)
			s.fed.k.Go("geo.sync", func(q *sim.Proc) {
				defer grp.Done()
				raw, err := s.conn.CallTimeout(q, simnet.Addr(dst), "geo.ship",
					shipReq{Path: path, Off: off, Data: data}, ctrlSize+len(data), 30*sim.Second)
				if err != nil {
					if firstErr == nil {
						firstErr = err
					}
					return
				}
				if resp := raw.(shipResp); resp.Err != "" && firstErr == nil {
					firstErr = fmt.Errorf("georepl: %s", resp.Err)
				}
			})
			s.Stats.SyncShips++
		}
		grp.Wait(p)
		return firstErr
	case pfs.GeoAsync:
		for _, dst := range s.duraTargets(m) {
			m.duraReplicas[dst] = true
			j, ok := s.journals[dst]
			if !ok {
				j = &journal{}
				s.journals[dst] = j
			}
			j.pending = append(j.pending, shipment{path: path, off: off, data: append([]byte(nil), data...)})
			s.Stats.AsyncShips++
		}
	}
	return nil
}

// startShipper launches the background process draining async journals in
// write order.
func (s *Site) startShipper() {
	stopped := false
	s.stopShip = func() { stopped = true }
	s.fed.k.Go("geo.shipper/"+s.Name, func(p *sim.Proc) {
		for {
			p.Sleep(s.fed.cfg.ShipInterval)
			if stopped || s.Down {
				return
			}
			for dst, j := range s.journals {
				for len(j.pending) > 0 {
					sh := j.pending[0]
					raw, err := s.conn.CallTimeout(p, simnet.Addr(dst), "geo.ship",
						shipReq{Path: sh.path, Off: sh.off, Data: sh.data}, ctrlSize+len(sh.data), 30*sim.Second)
					if err != nil {
						break // destination unreachable; retry next tick
					}
					if resp := raw.(shipResp); resp.Err != "" {
						break
					}
					j.pending = j.pending[1:]
				}
			}
		}
	})
}

// StopShipper halts the background shipper (drains the event queue in
// tests and benches).
func (s *Site) StopShipper() {
	if s.stopShip != nil {
		s.stopShip()
	}
}

// handleWrite serves a forwarded write as home.
func (s *Site) handleWrite(p *sim.Proc, from simnet.Addr, args any) (any, int) {
	req := args.(writeReq)
	m, ok := s.fed.meta[req.Path]
	if !ok || m.home != s.Name {
		return writeResp{Err: "not home for " + req.Path}, ctrlSize
	}
	if err := s.writeAsHome(p, req.Path, m, req.Off, req.Data); err != nil {
		return writeResp{Err: err.Error()}, ctrlSize
	}
	return writeResp{}, ctrlSize
}

// handleShip applies a durability shipment into the local file system.
func (s *Site) handleShip(p *sim.Proc, from simnet.Addr, args any) (any, int) {
	req := args.(shipReq)
	if _, err := s.fs.Stat(req.Path); err != nil {
		m := s.fed.meta[req.Path]
		pol := pfs.Policy{}
		if m != nil {
			pol = m.policy
		}
		if err := createLocal(s.fs, req.Path, pol); err != nil {
			return shipResp{Err: err.Error()}, ctrlSize
		}
	}
	if _, err := s.fs.WriteAt(p, req.Path, req.Off, req.Data); err != nil {
		return shipResp{Err: err.Error()}, ctrlSize
	}
	return shipResp{}, ctrlSize
}

// handleRead serves a remote site's fetch as home.
func (s *Site) handleRead(p *sim.Proc, from simnet.Addr, args any) (any, int) {
	req := args.(readReq)
	m, ok := s.fed.meta[req.Path]
	if !ok || m.home != s.Name {
		return readResp{Err: "not home for " + req.Path}, ctrlSize
	}
	buf := make([]byte, req.N)
	n, err := s.fs.ReadAt(p, req.Path, req.Off, buf)
	if err != nil {
		return readResp{Err: err.Error()}, ctrlSize
	}
	return readResp{Data: buf[:n], Size: m.size}, ctrlSize + n
}

// handleInvalidate drops a stale cache replica.
func (s *Site) handleInvalidate(p *sim.Proc, from simnet.Addr, args any) (any, int) {
	req := args.(invalidateReq)
	delete(s.ranges, req.Path)
	delete(s.accesses, req.Path)
	if _, err := s.fs.Stat(req.Path); err == nil {
		s.fs.Remove(req.Path)
	}
	return invalidateResp{}, ctrlSize
}

// handlePull serves a full-file copy for hot promotion.
func (s *Site) handlePull(p *sim.Proc, from simnet.Addr, args any) (any, int) {
	req := args.(pullReq)
	data, err := s.fs.ReadFile(p, req.Path)
	if err != nil {
		return pullResp{Err: err.Error()}, ctrlSize
	}
	return pullResp{Data: data}, ctrlSize + len(data)
}
