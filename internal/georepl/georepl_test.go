package georepl

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"

	"repro/internal/pfs"
	"repro/internal/sim"
	"repro/internal/simnet"
)

// memIO is an instant in-memory pfs.BlockIO: with local I/O free, test
// timings are dominated by the WAN, which is what §7 is about.
type memIO struct {
	bs   int
	vols map[string]map[int64][]byte
}

func newMemIO() *memIO {
	return &memIO{bs: 512, vols: map[string]map[int64][]byte{"v": make(map[int64][]byte)}}
}

func (m *memIO) BlockSize() int { return m.bs }

func (m *memIO) ReadBlocks(p *sim.Proc, vol string, lba int64, count, prio int) ([]byte, error) {
	buf := make([]byte, count*m.bs)
	for i := 0; i < count; i++ {
		if b, ok := m.vols[vol][lba+int64(i)]; ok {
			copy(buf[i*m.bs:], b)
		}
	}
	return buf, nil
}

func (m *memIO) WriteBlocks(p *sim.Proc, vol string, lba int64, data []byte, prio, repl int) error {
	for i := 0; i < len(data)/m.bs; i++ {
		b := make([]byte, m.bs)
		copy(b, data[i*m.bs:])
		m.vols[vol][lba+int64(i)] = b
	}
	return nil
}

type geoRig struct {
	k   *sim.Kernel
	fed *Federation
	a   *Site
	b   *Site
	c   *Site
}

// newGeoRig builds three sites in a triangle with the given one-way WAN
// latency.
func newGeoRig(t *testing.T, oneWay sim.Duration, cfg Config) *geoRig {
	t.Helper()
	k := sim.NewKernel(1)
	fed := NewFederation(k, cfg)
	mkFS := func() *pfs.FS {
		fs, err := pfs.New(k, pfs.Config{
			IO:           newMemIO(),
			Classes:      map[string]string{"c": "v"},
			DefaultClass: "c",
		})
		if err != nil {
			t.Fatal(err)
		}
		return fs
	}
	r := &geoRig{k: k, fed: fed}
	r.a = fed.AddSite("A", mkFS())
	r.b = fed.AddSite("B", mkFS())
	r.c = fed.AddSite("C", mkFS())
	link := simnet.WAN(oneWay, 1_000_000_000)
	fed.Connect("A", "B", link)
	fed.Connect("B", "C", link)
	fed.Connect("A", "C", link)
	return r
}

func (r *geoRig) run(body func(p *sim.Proc)) {
	done := false
	r.k.Go("test", func(p *sim.Proc) {
		body(p)
		done = true
	})
	r.k.RunFor(600 * sim.Second)
	if !done {
		panic("geo test did not finish in virtual time budget")
	}
}

func (r *geoRig) stop() {
	r.a.StopShipper()
	r.b.StopShipper()
	r.c.StopShipper()
}

func payload(n int, seed byte) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = byte(i)*11 + seed
	}
	return out
}

func TestLocalCreateAndRead(t *testing.T) {
	r := newGeoRig(t, 20*sim.Millisecond, Config{})
	defer r.stop()
	data := payload(4096, 1)
	r.run(func(p *sim.Proc) {
		if err := r.a.Create(p, "/data/f", pfs.Policy{}); err != nil {
			t.Errorf("create: %v", err)
			return
		}
		if err := r.a.WriteAt(p, "/data/f", 0, data); err != nil {
			t.Errorf("write: %v", err)
			return
		}
		got, err := r.a.ReadFile(p, "/data/f")
		if err != nil || !bytes.Equal(got, data) {
			t.Errorf("local read mismatch err=%v", err)
		}
	})
	if r.a.Stats.RemoteReads != 0 {
		t.Fatal("home read went remote")
	}
}

func TestRemoteFirstTouchThenPrefetch(t *testing.T) {
	const oneWay = 40 * sim.Millisecond
	r := newGeoRig(t, oneWay, Config{PrefetchBytes: 64 << 10, HotThreshold: 100})
	defer r.stop()
	data := payload(32<<10, 3)
	var first, second sim.Duration
	r.run(func(p *sim.Proc) {
		r.a.Create(p, "/f", pfs.Policy{})
		r.a.WriteAt(p, "/f", 0, data)

		buf := make([]byte, 4096)
		t0 := p.Now()
		if _, err := r.b.ReadAt(p, "/f", 0, buf); err != nil {
			t.Errorf("remote read: %v", err)
			return
		}
		first = p.Now().Sub(t0)
		if !bytes.Equal(buf, data[:4096]) {
			t.Error("remote read wrong data")
		}
		// The rest of the file was prefetched: local speed.
		t1 := p.Now()
		if _, err := r.b.ReadAt(p, "/f", 8192, buf); err != nil {
			t.Errorf("prefetched read: %v", err)
			return
		}
		second = p.Now().Sub(t1)
		if !bytes.Equal(buf, data[8192:8192+4096]) {
			t.Error("prefetched read wrong data")
		}
	})
	if first < 2*oneWay {
		t.Fatalf("first remote read %v cheaper than a WAN RTT %v", first, 2*oneWay)
	}
	if second*10 > first {
		t.Fatalf("prefetched read %v not ≫ faster than first %v", second, first)
	}
	if r.b.Stats.RemoteReads != 1 || r.b.Stats.PrefetchHits != 1 {
		t.Fatalf("stats = %+v, want 1 remote + 1 prefetch hit", r.b.Stats)
	}
}

func TestHotFilePromotion(t *testing.T) {
	r := newGeoRig(t, 10*sim.Millisecond, Config{PrefetchBytes: 1024, HotThreshold: 3})
	defer r.stop()
	data := payload(16<<10, 5)
	r.run(func(p *sim.Proc) {
		r.a.Create(p, "/hot", pfs.Policy{})
		r.a.WriteAt(p, "/hot", 0, data)
		buf := make([]byte, 512)
		// Access repeatedly from B at scattered offsets.
		for i := 0; i < 4; i++ {
			r.b.ReadAt(p, "/hot", int64(i*4096), buf)
		}
		// The promotion pull runs in the background; let it land.
		p.Sleep(500 * sim.Millisecond)
		if r.b.Stats.Promotions != 1 {
			t.Errorf("promotions = %d, want 1", r.b.Stats.Promotions)
		}
		// Whole file must now be local at B.
		t0 := p.Now()
		got, err := r.b.ReadFile(p, "/hot")
		if err != nil || !bytes.Equal(got, data) {
			t.Errorf("promoted read mismatch err=%v", err)
		}
		if d := p.Now().Sub(t0); d >= 10*sim.Millisecond {
			t.Errorf("promoted full read took %v, want local speed", d)
		}
	})
}

func TestWriteInvalidatesRemoteReplicas(t *testing.T) {
	r := newGeoRig(t, 5*sim.Millisecond, Config{HotThreshold: 1, PrefetchBytes: 1 << 20})
	defer r.stop()
	r.run(func(p *sim.Proc) {
		r.a.Create(p, "/f", pfs.Policy{})
		r.a.WriteAt(p, "/f", 0, payload(2048, 1))
		buf := make([]byte, 2048)
		r.b.ReadAt(p, "/f", 0, buf) // B builds a replica (threshold 1)
		if r.b.Stats.Promotions != 1 {
			t.Errorf("B not promoted")
		}
		// Home write invalidates B.
		newData := payload(2048, 9)
		r.a.WriteAt(p, "/f", 0, newData)
		p.Sleep(50 * sim.Millisecond) // let the invalidation land
		n, err := r.b.ReadAt(p, "/f", 0, buf)
		if err != nil || n != 2048 {
			t.Errorf("read after invalidate: n=%d err=%v", n, err)
			return
		}
		if !bytes.Equal(buf, newData) {
			t.Error("B read stale data after home write")
		}
	})
}

func TestForwardedWrite(t *testing.T) {
	r := newGeoRig(t, 15*sim.Millisecond, Config{})
	defer r.stop()
	data := payload(1024, 7)
	var elapsed sim.Duration
	r.run(func(p *sim.Proc) {
		r.a.Create(p, "/f", pfs.Policy{})
		t0 := p.Now()
		if err := r.b.WriteAt(p, "/f", 0, data); err != nil {
			t.Errorf("forwarded write: %v", err)
			return
		}
		elapsed = p.Now().Sub(t0)
		got, err := r.a.ReadFile(p, "/f")
		if err != nil || !bytes.Equal(got, data) {
			t.Error("forwarded write lost")
		}
	})
	if elapsed < 30*sim.Millisecond {
		t.Fatalf("forwarded write latency %v < WAN RTT", elapsed)
	}
	if r.b.Stats.WritesProxy != 1 || r.a.Stats.WritesHome != 1 {
		t.Fatal("proxy accounting wrong")
	}
}

func TestSyncReplicationLatencyAndDurability(t *testing.T) {
	const oneWay = 25 * sim.Millisecond
	r := newGeoRig(t, oneWay, Config{})
	defer r.stop()
	pol := pfs.Policy{Geo: pfs.GeoPolicy{Mode: pfs.GeoSync, Copies: 1, Sites: []string{"B"}}}
	data := payload(2048, 2)
	var elapsed sim.Duration
	r.run(func(p *sim.Proc) {
		r.a.Create(p, "/key", pol)
		t0 := p.Now()
		if err := r.a.WriteAt(p, "/key", 0, data); err != nil {
			t.Errorf("sync write: %v", err)
			return
		}
		elapsed = p.Now().Sub(t0)
		// The replica is already on B's local FS.
		got, err := r.b.FS().ReadFile(p, "/key")
		if err != nil || !bytes.Equal(got, data) {
			t.Errorf("sync replica missing on B: %v", err)
		}
	})
	if elapsed < 2*oneWay {
		t.Fatalf("sync write %v did not wait for the WAN RTT %v", elapsed, 2*oneWay)
	}
	if r.a.JournalDepth("B") != 0 {
		t.Fatal("sync mode left a journal backlog")
	}
}

func TestAsyncReplicationLocalLatencyThenConvergence(t *testing.T) {
	const oneWay = 25 * sim.Millisecond
	r := newGeoRig(t, oneWay, Config{ShipInterval: sim.Millisecond})
	defer r.stop()
	pol := pfs.Policy{Geo: pfs.GeoPolicy{Mode: pfs.GeoAsync, Sites: []string{"C"}}}
	data := payload(2048, 4)
	var elapsed sim.Duration
	r.run(func(p *sim.Proc) {
		r.a.Create(p, "/bulk", pol)
		t0 := p.Now()
		if err := r.a.WriteAt(p, "/bulk", 0, data); err != nil {
			t.Errorf("async write: %v", err)
			return
		}
		elapsed = p.Now().Sub(t0)
		if elapsed >= oneWay {
			t.Errorf("async write latency %v includes WAN wait", elapsed)
		}
		if r.a.JournalDepth("C") == 0 {
			t.Error("no journal backlog right after async write")
		}
		p.Sleep(200 * sim.Millisecond) // shipper drains
		if r.a.JournalDepth("C") != 0 {
			t.Error("journal did not drain")
		}
		got, err := r.c.FS().ReadFile(p, "/bulk")
		if err != nil || !bytes.Equal(got, data) {
			t.Errorf("async replica did not converge: %v", err)
		}
	})
}

func TestAsyncShipmentsApplyInWriteOrder(t *testing.T) {
	r := newGeoRig(t, 5*sim.Millisecond, Config{ShipInterval: sim.Millisecond})
	defer r.stop()
	pol := pfs.Policy{Geo: pfs.GeoPolicy{Mode: pfs.GeoAsync, Sites: []string{"B"}}}
	r.run(func(p *sim.Proc) {
		r.a.Create(p, "/seq", pol)
		for i := 0; i < 8; i++ {
			r.a.WriteAt(p, "/seq", 0, payload(512, byte(i)))
		}
		p.Sleep(300 * sim.Millisecond)
		got, err := r.b.FS().ReadFile(p, "/seq")
		if err != nil || !bytes.Equal(got, payload(512, 7)) {
			t.Error("final replica content is not the last write (ordering broken)")
		}
	})
}

func TestSiteDisasterSyncNoLoss(t *testing.T) {
	r := newGeoRig(t, 20*sim.Millisecond, Config{})
	defer r.stop()
	pol := pfs.Policy{Geo: pfs.GeoPolicy{Mode: pfs.GeoSync, Sites: []string{"B"}}}
	data := payload(4096, 6)
	r.run(func(p *sim.Proc) {
		r.a.Create(p, "/critical", pol)
		r.a.WriteAt(p, "/critical", 0, data)
		// Site A is destroyed.
		r.fed.FailSite("A")
		recovered, lost := r.fed.Failover("A")
		if recovered != 1 || lost != 0 {
			t.Errorf("failover: recovered=%d lost=%d", recovered, lost)
			return
		}
		// The file is now served by B, complete.
		got, err := r.b.ReadFile(p, "/critical")
		if err != nil || !bytes.Equal(got, data) {
			t.Error("sync-replicated file lost data in site disaster")
		}
	})
}

func TestSiteDisasterAsyncLossWindow(t *testing.T) {
	r := newGeoRig(t, 20*sim.Millisecond, Config{ShipInterval: sim.Second}) // slow shipper
	defer r.stop()
	pol := pfs.Policy{Geo: pfs.GeoPolicy{Mode: pfs.GeoAsync, Sites: []string{"B"}}}
	r.run(func(p *sim.Proc) {
		r.a.Create(p, "/journal", pol)
		r.a.WriteAt(p, "/journal", 0, payload(1024, 1))
		p.Sleep(2 * sim.Second) // first write ships
		r.a.WriteAt(p, "/journal", 1024, payload(1024, 2))
		backlog := r.a.JournalDepth("B")
		if backlog == 0 {
			t.Error("second write already shipped; test premise broken")
		}
		// Disaster strikes before the journal drains.
		r.fed.FailSite("A")
		recovered, _ := r.fed.Failover("A")
		if recovered != 1 {
			t.Errorf("recovered = %d", recovered)
			return
		}
		got, err := r.b.ReadFile(p, "/journal")
		if err != nil {
			t.Errorf("read after failover: %v", err)
			return
		}
		// The RPO window: only the first KiB survived.
		if int64(len(got)) != 1024 {
			t.Errorf("surviving bytes = %d, want 1024 (async loss window)", len(got))
		}
	})
}

func TestFailoverNoReplicaLosesFile(t *testing.T) {
	r := newGeoRig(t, 10*sim.Millisecond, Config{})
	defer r.stop()
	r.run(func(p *sim.Proc) {
		r.a.Create(p, "/unreplicated", pfs.Policy{}) // GeoNone
		r.a.WriteAt(p, "/unreplicated", 0, payload(512, 1))
		r.fed.FailSite("A")
		recovered, lost := r.fed.Failover("A")
		if recovered != 0 || lost != 1 {
			t.Errorf("recovered=%d lost=%d, want 0/1", recovered, lost)
		}
	})
}

func TestDownSiteRejectsIO(t *testing.T) {
	r := newGeoRig(t, 10*sim.Millisecond, Config{})
	defer r.stop()
	r.run(func(p *sim.Proc) {
		r.a.Create(p, "/f", pfs.Policy{})
		r.fed.FailSite("B")
		if _, err := r.b.ReadAt(p, "/f", 0, make([]byte, 10)); !errors.Is(err, ErrSiteDown) {
			t.Errorf("err = %v, want ErrSiteDown", err)
		}
	})
}

func TestDuplicateCreateRejected(t *testing.T) {
	r := newGeoRig(t, 10*sim.Millisecond, Config{})
	defer r.stop()
	r.run(func(p *sim.Proc) {
		r.a.Create(p, "/f", pfs.Policy{})
		if err := r.b.Create(p, "/f", pfs.Policy{}); !errors.Is(err, ErrFileExists) {
			t.Errorf("err = %v, want ErrFileExists (global namespace)", err)
		}
	})
}

// Property: rangeSet add/contains agrees with a brute-force bitmap.
func TestRangeSetProperty(t *testing.T) {
	f := func(ops []uint16) bool {
		rs := &rangeSet{}
		bitmap := make([]bool, 256)
		for _, op := range ops {
			lo := int64(op % 256)
			hi := lo + int64(op>>8)%32
			if hi > 256 {
				hi = 256
			}
			rs.add(lo, hi)
			for i := lo; i < hi; i++ {
				bitmap[i] = true
			}
		}
		// Check contains on sampled windows.
		for lo := int64(0); lo < 256; lo += 7 {
			for _, span := range []int64{1, 3, 17} {
				hi := lo + span
				if hi > 256 {
					continue
				}
				want := true
				for i := lo; i < hi; i++ {
					if !bitmap[i] {
						want = false
						break
					}
				}
				if rs.contains(lo, hi) != want {
					return false
				}
			}
		}
		var covered int64
		for _, b := range bitmap {
			if b {
				covered++
			}
		}
		return rs.covered() == covered
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
