package georepl

import (
	"fmt"
	"sort"

	"repro/internal/pfs"
	"repro/internal/sim"
	"repro/internal/simnet"
)

// rangeSet tracks which byte ranges of a remote file exist locally.
type rangeSet struct {
	runs [][2]int64 // sorted, disjoint [lo, hi)
}

// add inserts [lo, hi), merging overlaps.
func (r *rangeSet) add(lo, hi int64) {
	if hi <= lo {
		return
	}
	r.runs = append(r.runs, [2]int64{lo, hi})
	sort.Slice(r.runs, func(i, j int) bool { return r.runs[i][0] < r.runs[j][0] })
	merged := r.runs[:0]
	for _, run := range r.runs {
		n := len(merged)
		if n > 0 && run[0] <= merged[n-1][1] {
			if run[1] > merged[n-1][1] {
				merged[n-1][1] = run[1]
			}
			continue
		}
		merged = append(merged, run)
	}
	r.runs = merged
}

// contains reports whether [lo, hi) is fully present.
func (r *rangeSet) contains(lo, hi int64) bool {
	if hi <= lo {
		return true
	}
	for _, run := range r.runs {
		if run[0] <= lo && hi <= run[1] {
			return true
		}
	}
	return false
}

// covered returns the total bytes present.
func (r *rangeSet) covered() int64 {
	var n int64
	for _, run := range r.runs {
		n += run[1] - run[0]
	}
	return n
}

// servesLocally reports whether this site can serve path without the WAN:
// it is home, holds a promoted cache replica, or holds a synchronously
// maintained durability replica (async replicas may trail and do not serve).
func (s *Site) servesLocally(m *fileMeta) bool {
	if m.home == s.Name {
		return true
	}
	if m.cacheReplicas[s.Name] {
		return true
	}
	return m.duraReplicas[s.Name] && m.policy.Geo.Mode == pfs.GeoSync
}

// ReadAt reads through the single system image. Local data is served at
// local speed; remote data pays one WAN round trip and prefetches ahead,
// and files hot at this site are promoted to full local replicas (§7.1).
func (s *Site) ReadAt(p *sim.Proc, path string, off int64, buf []byte) (int, error) {
	if s.Down {
		return 0, ErrSiteDown
	}
	m, ok := s.fed.meta[path]
	if !ok {
		return 0, fmt.Errorf("%w: %q", ErrNoFile, path)
	}
	if s.servesLocally(m) {
		s.Stats.LocalReads++
		return s.fs.ReadAt(p, path, off, buf)
	}

	// Remote-homed file.
	if off >= m.size {
		return 0, nil
	}
	end := off + int64(len(buf))
	if end > m.size {
		end = m.size
	}
	s.accesses[path]++
	rs, ok := s.ranges[path]
	if !ok {
		rs = &rangeSet{}
		s.ranges[path] = rs
	}
	if rs.contains(off, end) {
		// Previously fetched/prefetched: local performance.
		s.Stats.PrefetchHits++
		s.Stats.LocalReads++
		n, err := s.fs.ReadAt(p, path, off, buf[:end-off])
		if err == nil {
			s.maybePromote(p, path, m)
		}
		return n, err
	}

	// Fetch the missing range plus the prefetch window from home.
	fetchHi := end + s.fed.cfg.PrefetchBytes
	if fetchHi > m.size {
		fetchHi = m.size
	}
	raw, err := s.conn.CallTimeout(p, simnet.Addr(m.home), "geo.read",
		readReq{Path: path, Off: off, N: fetchHi - off}, ctrlSize, 60*sim.Second)
	if err != nil {
		return 0, fmt.Errorf("georepl: fetch from home %s: %w", m.home, err)
	}
	resp := raw.(readResp)
	if resp.Err != "" {
		return 0, fmt.Errorf("georepl: %s", resp.Err)
	}
	s.Stats.RemoteReads++

	// Install the fetched bytes into the local partial replica.
	if _, err := s.fs.Stat(path); err != nil {
		if cerr := createLocal(s.fs, path, m.policy); cerr != nil {
			return 0, cerr
		}
	}
	if len(resp.Data) > 0 {
		if _, err := s.fs.WriteAt(p, path, off, resp.Data); err != nil {
			return 0, err
		}
		rs.add(off, off+int64(len(resp.Data)))
	}
	n := copy(buf, resp.Data)
	if int64(n) > end-off {
		n = int(end - off)
	}
	s.maybePromote(p, path, m)
	return n, nil
}

// maybePromote pulls a full replica once the file is hot at this site.
// The pull itself runs in the background — the read that crossed the
// threshold is not delayed by the bulk transfer.
func (s *Site) maybePromote(p *sim.Proc, path string, m *fileMeta) {
	if s.accesses[path] < s.fed.cfg.HotThreshold || m.cacheReplicas[s.Name] || m.home == s.Name {
		return
	}
	rs := s.ranges[path]
	if rs != nil && rs.covered() >= m.size {
		// Everything already fetched: promote in place.
		m.cacheReplicas[s.Name] = true
		s.Stats.Promotions++
		return
	}
	if s.promoting[path] {
		return
	}
	s.promoting[path] = true
	s.fed.k.Go("geo.promote/"+s.Name, func(q *sim.Proc) {
		defer delete(s.promoting, path)
		if s.Down || m.cacheReplicas[s.Name] {
			return
		}
		raw, err := s.conn.CallTimeout(q, simnet.Addr(m.home), "geo.pull",
			pullReq{Path: path}, ctrlSize, 60*sim.Second)
		if err != nil {
			return
		}
		resp := raw.(pullResp)
		if resp.Err != "" {
			return
		}
		if _, err := s.fs.Stat(path); err != nil {
			if cerr := createLocal(s.fs, path, m.policy); cerr != nil {
				return
			}
		}
		if _, err := s.fs.WriteAt(q, path, 0, resp.Data); err != nil {
			return
		}
		rs := s.ranges[path]
		if rs == nil {
			rs = &rangeSet{}
			s.ranges[path] = rs
		}
		rs.add(0, int64(len(resp.Data)))
		m.cacheReplicas[s.Name] = true
		s.Stats.Promotions++
	})
}

// ReadFile reads a whole file through the single system image.
func (s *Site) ReadFile(p *sim.Proc, path string) ([]byte, error) {
	m, ok := s.fed.meta[path]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoFile, path)
	}
	buf := make([]byte, m.size)
	n, err := s.ReadAt(p, path, 0, buf)
	return buf[:n], err
}
