// Package georepl implements §7 of the paper: multiple geographically
// separated sites managed as a single data image (Figure 3).
//
// Each site runs its own blade cluster and parallel file system; the
// federation's metadata center knows every file's home site, its replica
// sites, and its geographic policy. Reads at a remote site fetch data over
// the WAN once — with sequential prefetch, so "there would be a
// network-induced delay while the initial block of a file is referenced,
// but other blocks within the file would be prefetched, allowing local
// access performance" (§7.1). Files hot at several sites are automatically
// promoted to full local replicas. Writes apply at the home site and
// propagate to policy-selected durability sites synchronously or
// asynchronously (§7.2), trading write latency against the loss window a
// site disaster exposes.
package georepl

import (
	"errors"
	"fmt"

	"repro/internal/pfs"
	"repro/internal/sim"
	"repro/internal/simnet"
)

// Errors returned by federation operations.
var (
	ErrNoSite     = errors.New("georepl: unknown site")
	ErrSiteDown   = errors.New("georepl: site down")
	ErrNoFile     = errors.New("georepl: no such file")
	ErrFileExists = errors.New("georepl: file exists")
)

const ctrlSize = 96

// fileMeta is the metadata center's record for one file.
type fileMeta struct {
	home string
	// cacheReplicas are sites holding promoted read copies (invalidated
	// on write).
	cacheReplicas map[string]bool
	// duraReplicas are policy-selected durability sites (kept updated on
	// write, sync or async).
	duraReplicas map[string]bool
	policy       pfs.Policy
	size         int64
}

// Config tunes the federation.
type Config struct {
	// PrefetchBytes is how far ahead of a remote read the site prefetches
	// (default 256 KiB).
	PrefetchBytes int64
	// HotThreshold promotes a remote file to a full local replica after
	// this many accesses from one site (default 3).
	HotThreshold int
	// ShipInterval drives the async replication journal (default 5 ms).
	ShipInterval sim.Duration
}

// Federation is the multi-site system.
type Federation struct {
	k     *sim.Kernel
	wan   *simnet.Network
	cfg   Config
	sites map[string]*Site
	meta  map[string]*fileMeta // path → record (the "metadata center")
}

// NewFederation builds an empty federation with its own WAN network.
func NewFederation(k *sim.Kernel, cfg Config) *Federation {
	if cfg.PrefetchBytes <= 0 {
		cfg.PrefetchBytes = 256 << 10
	}
	if cfg.HotThreshold <= 0 {
		cfg.HotThreshold = 3
	}
	if cfg.ShipInterval <= 0 {
		cfg.ShipInterval = 5 * sim.Millisecond
	}
	return &Federation{
		k:     k,
		wan:   simnet.New(k),
		cfg:   cfg,
		sites: make(map[string]*Site),
		meta:  make(map[string]*fileMeta),
	}
}

// WAN returns the inter-site network (for link inspection in tests).
func (f *Federation) WAN() *simnet.Network { return f.wan }

// AddSite registers a site backed by its own file system (over its own
// cluster).
func (f *Federation) AddSite(name string, fs *pfs.FS) *Site {
	s := &Site{
		Name:      name,
		fed:       f,
		fs:        fs,
		conn:      simnet.NewConn(f.wan, simnet.Addr(name)),
		ranges:    make(map[string]*rangeSet),
		accesses:  make(map[string]int),
		journals:  make(map[string]*journal),
		promoting: make(map[string]bool),
	}
	s.conn.Register("geo.read", s.handleRead)
	s.conn.Register("geo.write", s.handleWrite)
	s.conn.Register("geo.ship", s.handleShip)
	s.conn.Register("geo.invalidate", s.handleInvalidate)
	s.conn.Register("geo.pull", s.handlePull)
	f.sites[name] = s
	s.startShipper()
	return s
}

// Connect joins two sites with the given WAN link.
func (f *Federation) Connect(a, b string, link simnet.LinkSpec) {
	f.wan.Connect(simnet.Addr(a), simnet.Addr(b), link)
}

// Site returns a registered site.
func (f *Federation) Site(name string) (*Site, error) {
	s, ok := f.sites[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoSite, name)
	}
	return s, nil
}

// Sites lists site names.
func (f *Federation) Sites() []string {
	out := make([]string, 0, len(f.sites))
	for n := range f.sites {
		out = append(out, n)
	}
	return out
}

// FailSite takes a site dark: its WAN port drops and its local state is
// considered lost to the federation.
func (f *Federation) FailSite(name string) error {
	s, ok := f.sites[name]
	if !ok {
		return ErrNoSite
	}
	s.Down = true
	f.wan.SetDown(simnet.Addr(name), true)
	return nil
}

// Failover promotes, for every file homed at the dead site, one surviving
// durability replica to home — the paper's "real-time disaster recovery".
// Files with no surviving durability replica become unavailable (their
// count is returned as lost).
func (f *Federation) Failover(dead string) (recovered, lost int) {
	for path, m := range f.meta {
		if m.home != dead {
			continue
		}
		promoted := ""
		for site := range m.duraReplicas {
			if s, ok := f.sites[site]; ok && !s.Down {
				promoted = site
				break
			}
		}
		if promoted == "" {
			lost++
			continue
		}
		delete(m.duraReplicas, promoted)
		m.home = promoted
		// The new home's copy may trail async shipments; its current
		// file size becomes authoritative.
		if ino, err := f.sites[promoted].fs.Stat(path); err == nil {
			m.size = ino.Size
		}
		recovered++
	}
	return recovered, lost
}

// Meta returns (home, size) for a path — the single-system image view.
func (f *Federation) Meta(path string) (home string, size int64, err error) {
	m, ok := f.meta[path]
	if !ok {
		return "", 0, ErrNoFile
	}
	return m.home, m.size, nil
}
