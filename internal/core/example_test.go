package core_test

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/disk"
	"repro/internal/pfs"
	"repro/internal/sim"
)

// smallDisks keeps the documented examples fast.
func smallDisks() disk.Spec {
	return disk.Spec{
		BlockSize:   512,
		Blocks:      8192,
		Seek:        sim.Millisecond,
		Rotation:    sim.Millisecond,
		TransferBps: 800_000_000,
	}
}

// ExampleNewSystem builds the paper's architecture and stores a file with
// per-file policy through the parallel file system.
func ExampleNewSystem() {
	sys, err := core.NewSystem(core.Options{
		Blades:       4,
		ReplicationN: 2,
		DiskSpec:     smallDisks(),
	})
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Stop()

	err = sys.Run(0, func(p *sim.Proc) error {
		if err := sys.FS.MkdirAll("/lab"); err != nil {
			return err
		}
		policy := pfs.Policy{CachePriority: 3, ReplicationN: 3}
		if err := sys.FS.WriteFile(p, "/lab/data.bin", []byte("shared pool"), policy); err != nil {
			return err
		}
		data, err := sys.FS.ReadFile(p, "/lab/data.bin")
		if err != nil {
			return err
		}
		fmt.Printf("read %d bytes through the coherent pool\n", len(data))
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	// Output: read 11 bytes through the coherent pool
}

// ExampleSystem_Run shows failure injection: a blade dies and acknowledged
// data survives via N-way cache replication (§6.1).
func ExampleSystem_Run() {
	sys, err := core.NewSystem(core.Options{ReplicationN: 2, DiskSpec: smallDisks()})
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Stop()
	err = sys.Run(0, func(p *sim.Proc) error {
		if err := sys.FS.WriteFile(p, "/important", []byte("ack'd write"), pfs.Policy{}); err != nil {
			return err
		}
		if err := sys.Cluster.FailBlade(p, 0); err != nil {
			return err
		}
		data, err := sys.FS.ReadFile(p, "/important")
		if err != nil {
			return err
		}
		fmt.Printf("after blade failure: %q\n", data)
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	// Output: after blade failure: "ack'd write"
}
