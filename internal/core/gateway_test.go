package core

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"repro/internal/disk"
	"repro/internal/gateway"
	"repro/internal/sim"
)

// TestSystemObjectGateway exercises the Options.Gateway wiring end to
// end: an object put/get through the full stack (IAM → metadata shards →
// pfs → cluster), with the gateway's telemetry registered under the
// cluster registry.
func TestSystemObjectGateway(t *testing.T) {
	sys, err := NewSystem(Options{
		Seed:          7,
		Blades:        2,
		Disks:         8,
		DisksPerGroup: 4,
		DiskSpec: disk.Spec{
			BlockSize: 4096, Blocks: 1 << 12,
			Seek: 5 * sim.Millisecond, Rotation: 3 * sim.Millisecond,
			TransferBps: 400 << 23,
		},
		Gateway: &gateway.Config{MetaShards: 2},
	})
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	defer sys.Stop()
	if sys.Gateway == nil {
		t.Fatalf("Options.Gateway set but System.Gateway nil")
	}
	if _, err := sys.Auth.CreateTenant("hpc"); err != nil {
		t.Fatalf("CreateTenant: %v", err)
	}
	tok, err := sys.Auth.Issue("hpc", 3600*sim.Second)
	if err != nil {
		t.Fatalf("Issue: %v", err)
	}
	payload := make([]byte, 20000)
	for i := range payload {
		payload[i] = byte(i % 251)
	}
	err = sys.Run(0, func(p *sim.Proc) error {
		if err := sys.Gateway.CreateBucket(p, tok, "results", gateway.BucketOptions{Priority: -1}); err != nil {
			return err
		}
		if _, err := sys.Gateway.PutObject(p, tok, "results", "run/001.dat", payload); err != nil {
			return err
		}
		got, _, err := sys.Gateway.GetObject(p, tok, "results", "run/001.dat")
		if err != nil {
			return err
		}
		if !bytes.Equal(got, payload) {
			return fmt.Errorf("object corrupted through full stack")
		}
		rows, _, err := sys.Gateway.ListObjects(p, tok, "results", "run/", "", 10)
		if err != nil {
			return err
		}
		if len(rows) != 1 || rows[0].Key != "run/001.dat" {
			return fmt.Errorf("ListObjects: %+v", rows)
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	// The gateway's tiers are visible in the cluster registry.
	for _, name := range []string{"gateway/ops/get", "gateway/iam/auths", "gateway/meta/shard/0/ops", "gateway/meta/shard/1/ops"} {
		if _, ok := sys.Registry.Value(name); !ok {
			t.Fatalf("metric %q not registered (have: %v)", name, sys.Registry.Match("gateway/*"))
		}
	}
	if v, _ := sys.Registry.Value("gateway/ops/get"); v != 1 {
		t.Fatalf("gateway/ops/get = %v, want 1", v)
	}
	if !strings.Contains(sys.Gateway.Status(), "1 buckets") {
		t.Fatalf("Status: %q", sys.Gateway.Status())
	}
}
