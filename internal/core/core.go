// Package core assembles the complete system the paper envisions: a blade
// cluster with coherent pooled caches (internal/controller), demand-mapped
// virtualization over RAID groups (internal/virt, internal/raid), the
// parallel file system with per-file policies (internal/pfs), the security
// ring (internal/security), and optional multi-site federation
// (internal/georepl) — behind one constructor.
//
// This is the public face of the repository: every example and benchmark
// builds a System (or a Federation of Systems) and drives it.
package core

import (
	"fmt"

	"repro/internal/balance"
	"repro/internal/controller"
	"repro/internal/disk"
	"repro/internal/gateway"
	"repro/internal/georepl"
	"repro/internal/hotcache"
	"repro/internal/pfs"
	"repro/internal/qos"
	"repro/internal/raid"
	"repro/internal/security"
	"repro/internal/sim"
	"repro/internal/simnet"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// Class describes one storage class beyond the default (§4: per-file RAID
// type selection maps files onto classes).
type Class struct {
	Name          string
	Level         raid.Level
	Disks         int
	DisksPerGroup int
}

// Options sizes a System. Zero values select the defaults noted per field.
type Options struct {
	// Seed drives all randomness (default 1).
	Seed int64
	// Blades is the controller blade count (default 4).
	Blades int
	// CacheBlocksPerBlade sizes each blade cache (default 4096).
	CacheBlocksPerBlade int
	// ReplicationN is the default write-cache copies (default 2).
	ReplicationN int
	// Disks/DisksPerGroup/RAIDLevel shape the default class
	// (defaults 20/5/RAID5).
	Disks         int
	DisksPerGroup int
	RAIDLevel     raid.Level
	// DiskSpec overrides the drive model (default disk.DefaultSpec()).
	DiskSpec disk.Spec
	// ExtraClasses adds storage classes with their own drives and level.
	ExtraClasses []Class
	// EncryptAtRest enables §5.1 storage-level encryption at the gateway.
	EncryptAtRest bool
	// EncThroughputBps models each encryption engine (0 = free).
	EncThroughputBps int64
	// FSVirtExtents sizes each class's backing DMSD (default 1<<20
	// extents — far larger than physical, per §3).
	FSVirtExtents int64
	// FabricRetry tunes the blade fabric's timeout/retry/backoff loop
	// (zero fields = coherence defaults).
	FabricRetry simnet.RetryPolicy
	// FabricFaults, when non-nil, injects seeded drop/duplicate/delay
	// faults on every fabric link from construction.
	FabricFaults *simnet.FaultPlan
	// Trace attaches a per-operation tracer (System.Tracer), enabled from
	// construction. Spans are stamped from virtual time, so traced runs
	// are deterministic per seed and timing is unaffected.
	Trace bool
	// Telemetry, when positive, starts the virtual-time metrics scraper
	// (System.Scraper) at this interval with the default watchdogs armed
	// (hot-spot over per-blade ops, stall over disk queues). The cluster's
	// named registry (System.Registry) exists either way; like tracing,
	// scraping is deterministic per seed and moves no simulated events.
	Telemetry sim.Duration
	// SLOReadP99, with Telemetry, arms the SLO watchdog: a scrape window
	// whose p99 op latency exceeds this emits an slo event, as do client
	// errors and degraded-mode entry/exit. Zero leaves latency unwatched.
	SLOReadP99 sim.Duration
	// Rebalance selects the load-spreading scheme behind the uniform
	// Rebalancer interface (System.Rebalancer):
	//
	//	"migrate"  — the adaptive hot-spot balancer (System.Balancer):
	//	             watches the scraper's per-blade load series and
	//	             migrates directory homes of the hottest blocks off
	//	             sustained hot blades. Requires Telemetry (the
	//	             scraper is its feedback signal). Starts enabled.
	//	"hotcache" — the DistCache-style hot-key cache tier
	//	             (System.HotCache): one small cache node per blade,
	//	             keys partitioned by a hash independent of the
	//	             directory-home hash, two-choice routing between the
	//	             layers, write-through invalidation. Starts DISABLED
	//	             (arm with System.HotCache.SetEnabled or yottactl
	//	             `rebalance on`).
	//	"off" / "" — no scheme (unless the legacy Balance flag is set).
	Rebalance string
	// Balance is the legacy spelling of Rebalance: "migrate". Setting
	// both (with Rebalance not "migrate") is a configuration error.
	Balance bool
	// BalanceConfig overrides the migration balancer's thresholds and
	// pacing (zero fields mirror the hot-spot watchdog defaults).
	BalanceConfig balance.Config
	// HotCacheConfig sizes the cache tier (zero fields = hotcache
	// defaults: 512 blocks/node, heat threshold 8, half-life 250ms).
	HotCacheConfig hotcache.Config
	// QoS, when non-nil, builds the multi-tenant admission-control and
	// weighted-fair scheduling subsystem (System.QoS): per-tenant token
	// buckets at the controller front door and priority lanes at every
	// disk and blade CPU, with a feedback governor attached when Telemetry
	// is also on. The governor defaults to a PI controller driving the
	// background lane's weight continuously from one loop per latency
	// objective: the cluster-wide target (Governor.P99Target, defaulting
	// to SLOReadP99) plus one loop per tenant whose TenantSpec sets
	// SLOP99; qos.GovStep selects the legacy halve/double law. The
	// subsystem starts disabled; System.QoS.SetEnabled (yottactl `qos on`)
	// flips it.
	QoS *qos.Config
	// FabricBatch enables the batched fabric plane from construction:
	// frame coalescing on every blade's RPC connection plus vectorized
	// coherence ops. Off by default — the unbatched plane is bit-exact
	// with prior builds; toggle at runtime with Cluster.SetFabricBatch
	// (yottactl `batch on|off`).
	FabricBatch bool
	// FabricBatchPolicy tunes coalescing (zero fields = simnet defaults).
	FabricBatchPolicy simnet.BatchPolicy
	// Gateway, when non-nil, builds the S3-style object plane
	// (System.Gateway): an object API over the file system with yig's
	// three-tier split — in-memory IAM over System.Auth, a shardable
	// bucket-metadata index, and the existing data path billed to each
	// bucket owner's QoS identity. FS and Auth fields are filled in by
	// the constructor; set MetaShards/Layout/latencies to size the tiers.
	Gateway *gateway.Config
}

func (o *Options) fillDefaults() {
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Blades == 0 {
		o.Blades = 4
	}
	if o.CacheBlocksPerBlade == 0 {
		o.CacheBlocksPerBlade = 4096
	}
	if o.ReplicationN == 0 {
		o.ReplicationN = 2
	}
	if o.Disks == 0 {
		o.Disks = 20
	}
	if o.DisksPerGroup == 0 {
		o.DisksPerGroup = 5
	}
	if o.RAIDLevel == 0 {
		// The zero Level is RAID0; the system default is RAID5. Use an
		// extra class for a RAID0 tier.
		o.RAIDLevel = raid.RAID5
	}
	if o.FSVirtExtents == 0 {
		o.FSVirtExtents = 1 << 20
	}
}

// System is one data center: cluster + file system + security ring.
type System struct {
	K       *sim.Kernel
	Cluster *controller.Cluster
	FS      *pfs.FS
	Auth    *security.Authority
	Mask    *security.LUNMask
	// BlockGateway is the §5 block-export front door (token checks, LUN
	// masking, at-rest encryption) — the SAN face of the pool.
	BlockGateway *security.Gateway
	// Gateway is the S3-style object plane; non-nil when Options.Gateway
	// was set.
	Gateway *gateway.Gateway
	// Tracer is non-nil when Options.Trace was set.
	Tracer *trace.Tracer
	// Registry is the cluster's named-metric registry (always available).
	Registry *telemetry.Registry
	// Scraper is non-nil when Options.Telemetry was set; it is already
	// started and is stopped by System.Stop.
	Scraper *telemetry.Scraper
	// Balancer is non-nil when the "migrate" scheme was selected; it is
	// already started and is stopped by System.Stop.
	Balancer *balance.Controller
	// HotCache is non-nil when the "hotcache" scheme was selected; it
	// starts disabled.
	HotCache *hotcache.Tier
	// Rebalancer is the scheme-independent handle over whichever of
	// Balancer/HotCache was built (nil with Rebalance off).
	Rebalancer Rebalancer
	// QoS is non-nil when Options.QoS was set; it starts disabled.
	QoS *qos.Manager

	stopScrape  func()
	stopBalance func()
}

// NewSystem builds a system on its own kernel.
func NewSystem(opts Options) (*System, error) {
	opts.fillDefaults()
	k := sim.NewKernel(opts.Seed)
	return NewSystemOn(k, opts)
}

// NewSystemOn builds a system on an existing kernel (multi-site setups
// share one kernel).
func NewSystemOn(k *sim.Kernel, opts Options) (*System, error) {
	opts.fillDefaults()
	cfg := controller.DefaultConfig()
	cfg.Blades = opts.Blades
	cfg.CacheBlocksPerBlade = opts.CacheBlocksPerBlade
	cfg.ReplicationN = opts.ReplicationN
	cfg.Disks = opts.Disks
	cfg.DisksPerGroup = opts.DisksPerGroup
	cfg.RAIDLevel = opts.RAIDLevel
	cfg.DiskSpec = opts.DiskSpec
	cfg.FabricRetry = opts.FabricRetry
	cfg.FabricFaults = opts.FabricFaults
	cfg.QoS = opts.QoS
	cfg.FabricBatch = opts.FabricBatch
	cfg.FabricBatchPolicy = opts.FabricBatchPolicy
	var tracer *trace.Tracer
	if opts.Trace {
		tracer = trace.NewTracer(k)
		tracer.SetEnabled(true)
		cfg.Tracer = tracer
	}
	cluster, err := controller.New(k, cfg)
	if err != nil {
		return nil, err
	}
	classes := map[string]string{"default": "fs.default"}
	if _, err := cluster.CreateDMSD("default", "fs.default", opts.FSVirtExtents); err != nil {
		return nil, err
	}
	for _, cl := range opts.ExtraClasses {
		if err := cluster.AddClass(controller.StorageClass{
			Name: cl.Name, Level: cl.Level, Disks: cl.Disks, DisksPerGroup: cl.DisksPerGroup,
		}); err != nil {
			return nil, err
		}
		vol := "fs." + cl.Name
		if _, err := cluster.CreateDMSD(cl.Name, vol, opts.FSVirtExtents); err != nil {
			return nil, err
		}
		classes[cl.Name] = vol
	}
	fs, err := pfs.New(k, pfs.Config{
		IO:           cluster,
		Classes:      classes,
		DefaultClass: "default",
	})
	if err != nil {
		return nil, err
	}
	auth := security.NewAuthority(k)
	mask := security.NewLUNMask()
	gw := security.NewGateway(security.GatewayConfig{
		Authority:        auth,
		Mask:             mask,
		Store:            cluster,
		EncryptAtRest:    opts.EncryptAtRest,
		EncThroughputBps: opts.EncThroughputBps,
	})
	sys := &System{K: k, Cluster: cluster, FS: fs, Auth: auth, Mask: mask, BlockGateway: gw,
		Tracer: tracer, Registry: cluster.Reg, QoS: cluster.QoS}
	if opts.Gateway != nil {
		gcfg := *opts.Gateway
		gcfg.FS = fs
		gcfg.Auth = auth
		sys.Gateway, err = gateway.New(k, gcfg)
		if err != nil {
			return nil, err
		}
		sys.Gateway.RegisterTelemetry(cluster.Reg.Sub("gateway"))
	}
	if opts.Telemetry > 0 {
		sys.Scraper = telemetry.NewScraper(k, cluster.Reg, opts.Telemetry)
		sys.Scraper.Tracer = tracer
		sys.Scraper.AddWatchdog(&telemetry.HotSpot{Pattern: "blade/*/ops"})
		sys.Scraper.AddWatchdog(&telemetry.Stall{Queue: "disk/*/queue_depth", Throughput: "cluster/ops"})
		sys.Scraper.AddWatchdog(&telemetry.SLO{
			Hist:     "cluster/op_latency",
			P99Max:   opts.SLOReadP99,
			Errors:   "cluster/errors",
			Degraded: "cluster/degraded_ops",
		})
		if sys.QoS != nil {
			// The governor defends the same objective the SLO watchdog
			// enforces, regulating to NearFrac of the threshold so the
			// watchdog stays quiet; per-tenant SLOP99 loops ride along.
			gcfg := opts.QoS.Governor
			if gcfg.P99Target == 0 {
				gcfg.P99Target = opts.SLOReadP99
			}
			sys.Scraper.AddWatchdog(sys.QoS.AttachGovernor(gcfg))
		}
		sys.stopScrape = sys.Scraper.Start()
	}
	scheme := opts.Rebalance
	if opts.Balance {
		if scheme != "" && scheme != RebalanceMigrate {
			return nil, fmt.Errorf("core: Balance (legacy migrate flag) conflicts with Rebalance=%q", scheme)
		}
		scheme = RebalanceMigrate
	}
	switch scheme {
	case "", RebalanceOff:
	case RebalanceMigrate:
		if sys.Scraper == nil {
			return nil, fmt.Errorf("core: Balance requires Telemetry (the scraper is the rebalancer's feedback signal)")
		}
		sys.Balancer = cluster.NewBalancer(sys.Scraper, opts.BalanceConfig)
		sys.Rebalancer = sys.Balancer
		sys.stopBalance = sys.Balancer.Start()
	case RebalanceHotCache:
		sys.HotCache = cluster.NewHotCache(opts.HotCacheConfig)
		sys.Rebalancer = sys.HotCache
	default:
		return nil, fmt.Errorf("core: unknown Rebalance scheme %q (want migrate, hotcache, or off)", scheme)
	}
	return sys, nil
}

// Stop halts the system's background processes so the simulation drains.
func (s *System) Stop() {
	if s.stopBalance != nil {
		s.stopBalance()
		s.stopBalance = nil
	}
	if s.stopScrape != nil {
		s.stopScrape()
		s.stopScrape = nil
	}
	s.Cluster.Stop()
}

// Run executes the body as a simulation process and advances virtual time
// until it completes (bounded by horizon; 0 = 1 hour of virtual time).
func (s *System) Run(horizon sim.Duration, body func(p *sim.Proc) error) error {
	if horizon <= 0 {
		horizon = 3600 * sim.Second
	}
	var err error
	done := false
	s.K.Go("main", func(p *sim.Proc) {
		err = body(p)
		done = true
	})
	deadline := s.K.Now().Add(horizon)
	for !done && s.K.Now() < deadline {
		s.K.RunFor(100 * sim.Millisecond)
	}
	if !done {
		return fmt.Errorf("core: body did not complete within %v of virtual time", horizon)
	}
	return err
}

// VolumeTarget adapts one cluster volume to the workload Target shape.
type VolumeTarget struct {
	Cluster *controller.Cluster
	Vol     string
	// Priority is the cache/QoS priority every op carries (0..3); the QoS
	// front door maps it onto the foreground scheduling lane.
	Priority int
	// data reused for writes (content is irrelevant to the workload).
	scratch []byte
}

// BlockSize implements workload.Target.
func (t *VolumeTarget) BlockSize() int { return t.Cluster.BlockSize() }

// Read implements workload.Target.
func (t *VolumeTarget) Read(p *sim.Proc, lba int64, blocks int) error {
	_, err := t.Cluster.ReadBlocks(p, t.Vol, lba, blocks, t.Priority)
	return err
}

// Write implements workload.Target.
func (t *VolumeTarget) Write(p *sim.Proc, lba int64, blocks int) error {
	need := blocks * t.Cluster.BlockSize()
	if len(t.scratch) < need {
		t.scratch = make([]byte, need)
		for i := range t.scratch {
			t.scratch[i] = byte(i)
		}
	}
	return t.Cluster.WriteBlocks(p, t.Vol, lba, t.scratch[:need], t.Priority, 0)
}

// GeoOptions describes a multi-site federation of Systems.
type GeoOptions struct {
	// Sites lists the site names.
	Sites []string
	// SiteOptions builds each site's System options.
	SiteOptions func(name string) Options
	// WANOneWay is the inter-site propagation delay.
	WANOneWay sim.Duration
	// WANBps is the inter-site bandwidth.
	WANBps int64
	// Geo tunes prefetch/promotion/shipping.
	Geo georepl.Config
}

// GeoSystem is a federation of full Systems on one kernel.
type GeoSystem struct {
	K       *sim.Kernel
	Fed     *georepl.Federation
	Systems map[string]*System
}

// NewGeoSystem builds len(opts.Sites) Systems on one kernel, connects them
// in a full WAN mesh, and federates their file systems.
func NewGeoSystem(seed int64, g GeoOptions) (*GeoSystem, error) {
	if len(g.Sites) < 2 {
		return nil, fmt.Errorf("core: federation needs ≥2 sites")
	}
	if g.WANBps == 0 {
		g.WANBps = 1_000_000_000
	}
	k := sim.NewKernel(seed)
	fed := georepl.NewFederation(k, g.Geo)
	gs := &GeoSystem{K: k, Fed: fed, Systems: make(map[string]*System)}
	for _, name := range g.Sites {
		opts := Options{}
		if g.SiteOptions != nil {
			opts = g.SiteOptions(name)
		}
		sys, err := NewSystemOn(k, opts)
		if err != nil {
			return nil, err
		}
		gs.Systems[name] = sys
		fed.AddSite(name, sys.FS)
	}
	for i, a := range g.Sites {
		for _, b := range g.Sites[i+1:] {
			fed.Connect(a, b, simnet.WAN(g.WANOneWay, g.WANBps))
		}
	}
	return gs, nil
}

// Site returns the georepl site handle for name.
func (g *GeoSystem) Site(name string) *georepl.Site {
	s, _ := g.Fed.Site(name)
	return s
}

// Stop halts all background processes (flushers, shippers).
func (g *GeoSystem) Stop() {
	for _, sys := range g.Systems {
		sys.Stop()
	}
	for _, name := range g.Fed.Sites() {
		if s, err := g.Fed.Site(name); err == nil {
			s.StopShipper()
		}
	}
}

// Run is System.Run for a federation.
func (g *GeoSystem) Run(horizon sim.Duration, body func(p *sim.Proc) error) error {
	if horizon <= 0 {
		horizon = 3600 * sim.Second
	}
	var err error
	done := false
	g.K.Go("main", func(p *sim.Proc) {
		err = body(p)
		done = true
	})
	deadline := g.K.Now().Add(horizon)
	for !done && g.K.Now() < deadline {
		g.K.RunFor(100 * sim.Millisecond)
	}
	if !done {
		return fmt.Errorf("core: body did not complete within %v of virtual time", horizon)
	}
	return err
}
