package core

import (
	"bytes"
	"testing"

	"repro/internal/disk"
	"repro/internal/pfs"
	"repro/internal/raid"
	"repro/internal/sim"
)

// fastDisks keeps unit-test systems small and quick.
func fastDisks() disk.Spec {
	return disk.Spec{
		BlockSize:   512,
		Blocks:      8192,
		Seek:        sim.Millisecond,
		Rotation:    sim.Millisecond,
		TransferBps: 800_000_000,
	}
}

func TestSystemEndToEndFile(t *testing.T) {
	sys, err := NewSystem(Options{DiskSpec: fastDisks()})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Stop()
	data := []byte("a single storage pool for the whole lab")
	err = sys.Run(0, func(p *sim.Proc) error {
		if err := sys.FS.MkdirAll("/projects/alpha"); err != nil {
			return err
		}
		if err := sys.FS.WriteFile(p, "/projects/alpha/run1.dat", data, pfs.Policy{}); err != nil {
			return err
		}
		got, err := sys.FS.ReadFile(p, "/projects/alpha/run1.dat")
		if err != nil {
			return err
		}
		if !bytes.Equal(got, data) {
			t.Error("file round trip mismatch")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSystemExtraClassesEndToEnd(t *testing.T) {
	// §4 / F4: a file whose policy names the mirror class lands on RAID-1
	// groups, end to end.
	sys, err := NewSystem(Options{
		DiskSpec: fastDisks(),
		ExtraClasses: []Class{
			{Name: "mirror", Level: raid.RAID1, Disks: 4, DisksPerGroup: 2},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Stop()
	data := bytes.Repeat([]byte("precious"), 512)
	err = sys.Run(0, func(p *sim.Proc) error {
		if err := sys.FS.WriteFile(p, "/critical.db", data, pfs.Policy{Class: "mirror", ReplicationN: 3}); err != nil {
			return err
		}
		got, err := sys.FS.ReadFile(p, "/critical.db")
		if err != nil {
			return err
		}
		if !bytes.Equal(got, data) {
			t.Error("mirror-class round trip mismatch")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// The mirror pool physically holds the file's extents.
	pool, err := sys.Cluster.PoolFor("mirror")
	if err != nil {
		t.Fatal(err)
	}
	if pool.AllocatedExtents() == 0 {
		t.Fatal("mirror class pool untouched; class routing broken")
	}
}

func TestSystemSecurityIntegration(t *testing.T) {
	sys, err := NewSystem(Options{DiskSpec: fastDisks(), EncryptAtRest: true})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Stop()
	if _, err := sys.Cluster.CreateDMSD("default", "tenant1-lun", 64); err != nil {
		t.Fatal(err)
	}
	sys.BlockGateway.ExportLUN("lun1", "tenant1-lun")
	sys.Auth.CreateTenant("hep")
	tok, _ := sys.Auth.Issue("hep", 3600*sim.Second)
	sys.Mask.Allow("lun1", "hep", 2) // ReadWrite
	payload := bytes.Repeat([]byte{0xAA}, 512)
	err = sys.Run(0, func(p *sim.Proc) error {
		if err := sys.BlockGateway.Write(p, tok, "lun1", 0, payload, 0, 0); err != nil {
			return err
		}
		got, err := sys.BlockGateway.Read(p, tok, "lun1", 0, 1, 0)
		if err != nil {
			return err
		}
		if !bytes.Equal(got, payload) {
			t.Error("gateway round trip mismatch")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestVolumeTarget(t *testing.T) {
	sys, err := NewSystem(Options{DiskSpec: fastDisks()})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Stop()
	if _, err := sys.Cluster.CreateDMSD("default", "bench", 256); err != nil {
		t.Fatal(err)
	}
	target := &VolumeTarget{Cluster: sys.Cluster, Vol: "bench"}
	err = sys.Run(0, func(p *sim.Proc) error {
		if err := target.Write(p, 0, 4); err != nil {
			return err
		}
		return target.Read(p, 0, 4)
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestGeoSystem(t *testing.T) {
	gs, err := NewGeoSystem(1, GeoOptions{
		Sites:     []string{"east", "west"},
		WANOneWay: 20 * sim.Millisecond,
		SiteOptions: func(string) Options {
			return Options{DiskSpec: fastDisks()}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer gs.Stop()
	data := bytes.Repeat([]byte("geo"), 700)
	err = gs.Run(0, func(p *sim.Proc) error {
		east := gs.Site("east")
		west := gs.Site("west")
		if err := east.Create(p, "/shared/data.bin", pfs.Policy{}); err != nil {
			return err
		}
		if err := east.WriteAt(p, "/shared/data.bin", 0, data); err != nil {
			return err
		}
		got, err := west.ReadFile(p, "/shared/data.bin")
		if err != nil {
			return err
		}
		if !bytes.Equal(got, data) {
			t.Error("cross-site read mismatch")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if gs.Site("west").Stats.RemoteReads == 0 {
		t.Fatal("west read did not traverse the WAN")
	}
}
