package core

// Rebalancer is the uniform control surface over the two load-spreading
// schemes: the migration balancer (internal/balance — move hot directory
// homes) and the hot-key cache tier (internal/hotcache — shadow hot keys
// in an upper cache layer partitioned by an independent hash). The
// controller builds one of them per Options.Rebalance; telemetry and
// yottactl (`rebalance on|off|status|report`) drive whichever is
// installed through this interface without knowing the scheme.
type Rebalancer interface {
	// Scheme names the strategy: "migrate" or "hotcache".
	Scheme() string
	// SetEnabled arms or parks the scheme. Parking the cache tier also
	// drops its cached copies; parking the balancer resets its skew
	// streak.
	SetEnabled(on bool)
	// Enabled reports whether the scheme is armed.
	Enabled() bool
	// Status is a one-line state summary.
	Status() string
	// Report is the full activity breakdown (decision log or per-node
	// cache statistics).
	Report() string
}

// Rebalance scheme names accepted by Options.Rebalance.
const (
	RebalanceMigrate  = "migrate"
	RebalanceHotCache = "hotcache"
	RebalanceOff      = "off"
)
