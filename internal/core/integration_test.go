package core

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/pfs"
	"repro/internal/sim"
)

// TestFileSurvivesBladeFailure drives the full stack: files written through
// the PFS, a blade killed before any flush, and the data recovered from
// cache replicas (§6.1 end to end).
func TestFileSurvivesBladeFailure(t *testing.T) {
	sys, err := NewSystem(Options{DiskSpec: fastDisks(), ReplicationN: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Stop()
	data := bytes.Repeat([]byte("irreplaceable "), 200)
	err = sys.Run(0, func(p *sim.Proc) error {
		if err := sys.FS.WriteFile(p, "/results.dat", data, pfs.Policy{}); err != nil {
			return err
		}
		// Kill half the blades immediately (no flush interval elapsed).
		if err := sys.Cluster.FailBlade(p, 0); err != nil {
			return err
		}
		if err := sys.Cluster.FailBlade(p, 1); err != nil {
			return err
		}
		got, err := sys.FS.ReadFile(p, "/results.dat")
		if err != nil {
			return err
		}
		if !bytes.Equal(got, data) {
			t.Error("file corrupted by blade failures")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestFileSurvivesDiskFailureAndRebuild exercises PFS → virt → RAID
// degraded reads and a distributed rebuild under the whole stack.
func TestFileSurvivesDiskFailureAndRebuild(t *testing.T) {
	sys, err := NewSystem(Options{DiskSpec: fastDisks()})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Stop()
	data := bytes.Repeat([]byte("raid"), 4096)
	err = sys.Run(0, func(p *sim.Proc) error {
		if err := sys.FS.WriteFile(p, "/big.bin", data, pfs.Policy{}); err != nil {
			return err
		}
		sys.Cluster.FlushAll(p)
		// Fail a drive in every group the file could touch; reads must
		// come back degraded but correct.
		sys.Cluster.Groups[0].Disks()[2].Fail()
		got, err := sys.FS.ReadFile(p, "/big.bin")
		if err != nil {
			return err
		}
		if !bytes.Equal(got, data) {
			t.Error("degraded read corrupted file")
		}
		if err := sys.Cluster.DistributedRebuild(p, 0, 2); err != nil {
			return err
		}
		got, err = sys.FS.ReadFile(p, "/big.bin")
		if err != nil {
			return err
		}
		if !bytes.Equal(got, data) {
			t.Error("post-rebuild read corrupted file")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestManyFilesManyClients is a smoke-scale full-stack workout: concurrent
// writers and readers over a shared directory tree.
func TestManyFilesManyClients(t *testing.T) {
	sys, err := NewSystem(Options{DiskSpec: fastDisks()})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Stop()
	const nClients = 8
	const filesPer = 6
	err = sys.Run(0, func(p *sim.Proc) error {
		if err := sys.FS.MkdirAll("/work"); err != nil {
			return err
		}
		grp := sim.NewGroup(sys.K)
		errs := make([]error, nClients)
		for c := 0; c < nClients; c++ {
			c := c
			grp.Add(1)
			sys.K.Go("client", func(q *sim.Proc) {
				defer grp.Done()
				for f := 0; f < filesPer; f++ {
					path := fmt.Sprintf("/work/c%d-f%d", c, f)
					payload := bytes.Repeat([]byte{byte(c*16 + f)}, 2048)
					if err := sys.FS.WriteFile(q, path, payload, pfs.Policy{}); err != nil {
						errs[c] = err
						return
					}
					got, err := sys.FS.ReadFile(q, path)
					if err != nil || !bytes.Equal(got, payload) {
						errs[c] = fmt.Errorf("verify %s: %v", path, err)
						return
					}
				}
			})
		}
		grp.Wait(p)
		for _, err := range errs {
			if err != nil {
				return err
			}
		}
		names, err := sys.FS.List("/work")
		if err != nil {
			return err
		}
		if len(names) != nClients*filesPer {
			t.Errorf("files = %d, want %d", len(names), nClients*filesPer)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestGeoSiteDisasterEndToEnd: full-stack site failover with per-file
// policies (sync file survives, unreplicated file is lost).
func TestGeoSiteDisasterEndToEnd(t *testing.T) {
	gs, err := NewGeoSystem(1, GeoOptions{
		Sites:     []string{"east", "west"},
		WANOneWay: 10 * sim.Millisecond,
		SiteOptions: func(string) Options {
			return Options{DiskSpec: fastDisks()}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer gs.Stop()
	key := bytes.Repeat([]byte("key"), 1000)
	err = gs.Run(0, func(p *sim.Proc) error {
		east := gs.Site("east")
		syncPol := pfs.Policy{Geo: pfs.GeoPolicy{Mode: pfs.GeoSync, Sites: []string{"west"}}}
		if err := east.Create(p, "/critical", syncPol); err != nil {
			return err
		}
		if err := east.WriteAt(p, "/critical", 0, key); err != nil {
			return err
		}
		if err := east.Create(p, "/scratch", pfs.Policy{}); err != nil {
			return err
		}
		if err := east.WriteAt(p, "/scratch", 0, []byte("ephemeral")); err != nil {
			return err
		}
		gs.Fed.FailSite("east")
		recovered, lost := gs.Fed.Failover("east")
		if recovered != 1 || lost != 1 {
			t.Errorf("failover recovered=%d lost=%d, want 1/1", recovered, lost)
		}
		west := gs.Site("west")
		got, err := west.ReadFile(p, "/critical")
		if err != nil {
			return err
		}
		if !bytes.Equal(got, key) {
			t.Error("sync-replicated file damaged by site disaster")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestDeterminism: two identical systems with the same seed produce
// identical virtual-time traces — the property every experiment rests on.
func TestDeterminism(t *testing.T) {
	runOnce := func() sim.Time {
		sys, err := NewSystem(Options{Seed: 77, DiskSpec: fastDisks()})
		if err != nil {
			t.Fatal(err)
		}
		defer sys.Stop()
		var end sim.Time
		sys.Run(0, func(p *sim.Proc) error {
			for i := 0; i < 10; i++ {
				path := fmt.Sprintf("/f%d", i)
				sys.FS.WriteFile(p, path, bytes.Repeat([]byte{byte(i)}, 1024), pfs.Policy{})
				sys.FS.ReadFile(p, path)
			}
			end = p.Now()
			return nil
		})
		return end
	}
	if a, b := runOnce(), runOnce(); a != b {
		t.Fatalf("same seed, different virtual end times: %v vs %v", a, b)
	}
}
