package critpath

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Cohort summarizes the critical-path composition of a latency class of
// ops: how the mean op in the class decomposes per phase.
type Cohort struct {
	Ops      int
	MeanWall sim.Duration
	// Crit is the mean per-op critical time per phase, aligned with
	// trace.Phases (index len(trace.Phases) = unknown phases).
	Crit []sim.Duration

	// Exact sums backing the means above; Share divides these so phase
	// shares tile 100% regardless of per-op integer truncation.
	wallSum sim.Duration
	critSum []sim.Duration
}

// Share returns phase index pi's share of the cohort's wall time, in
// percent (0 for an empty cohort). Shares across phases sum to 100.
func (c Cohort) Share(pi int) float64 {
	if c.wallSum <= 0 {
		return 0
	}
	return 100 * float64(c.critSum[pi]) / float64(c.wallSum)
}

// Cohorts splits the analyzed ops into the median class (wall ≤ p50 of op
// walls) and the tail class (wall ≥ p99) and returns each class's mean
// critical-path composition. The same op-wall quantile convention as
// metrics.Histogram is used (ceil(q·n), exact here since every wall is
// retained). Both cohorts are non-empty whenever any op was analyzed.
func (a *Analysis) Cohorts() (median, tail Cohort) {
	n := len(a.Ops)
	median.critSum = make([]sim.Duration, len(trace.Phases)+1)
	tail.critSum = make([]sim.Duration, len(trace.Phases)+1)
	if n == 0 {
		median.Crit = make([]sim.Duration, len(trace.Phases)+1)
		tail.Crit = make([]sim.Duration, len(trace.Phases)+1)
		return median, tail
	}
	walls := make([]sim.Duration, n)
	for i := range a.Ops {
		walls[i] = a.Ops[i].Wall
	}
	sort.Slice(walls, func(i, j int) bool { return walls[i] < walls[j] })
	p50 := walls[(n+1)/2-1]
	p99 := walls[(99*n+99)/100-1]
	for i := range a.Ops {
		op := &a.Ops[i]
		if op.Wall <= p50 {
			median.Ops++
			median.wallSum += op.Wall
			for pi, d := range op.Crit {
				median.critSum[pi] += d
			}
		}
		if op.Wall >= p99 {
			tail.Ops++
			tail.wallSum += op.Wall
			for pi, d := range op.Crit {
				tail.critSum[pi] += d
			}
		}
	}
	norm := func(c *Cohort) {
		c.Crit = make([]sim.Duration, len(c.critSum))
		if c.Ops == 0 {
			return
		}
		c.MeanWall = c.wallSum / sim.Duration(c.Ops)
		for pi, d := range c.critSum {
			c.Crit[pi] = d / sim.Duration(c.Ops)
		}
	}
	norm(&median)
	norm(&tail)
	return median, tail
}

// phaseName labels phase index pi (indexes past trace.Phases are "other").
func phaseName(pi int) string {
	if pi < len(trace.Phases) {
		return string(trace.Phases[pi])
	}
	return "other"
}

// TailTable renders the tail diagnosis: per phase, the mean critical-path
// contribution to a median op against a p99+ op, and the share shift
// between them — "which stage actually bounded the slow ops, and how does
// the tail's composition differ from the median's".
func (a *Analysis) TailTable(title string) *metrics.Table {
	tab := metrics.NewTable(title,
		"phase", "median ms", "median %", "p99+ ms", "p99+ %", "Δshare pts")
	median, tail := a.Cohorts()
	for pi := range median.Crit {
		if median.Crit[pi] == 0 && tail.Crit[pi] == 0 {
			continue
		}
		tab.AddRow(phaseName(pi),
			fmt.Sprintf("%.3f", median.Crit[pi].Millis()),
			fmt.Sprintf("%.1f", median.Share(pi)),
			fmt.Sprintf("%.3f", tail.Crit[pi].Millis()),
			fmt.Sprintf("%.1f", tail.Share(pi)),
			fmt.Sprintf("%+.1f", tail.Share(pi)-median.Share(pi)))
	}
	tab.AddNote("median cohort %d ops (mean wall %.3f ms), p99+ cohort %d ops (mean wall %.3f ms), of %d analyzed",
		median.Ops, median.MeanWall.Millis(), tail.Ops, tail.MeanWall.Millis(), len(a.Ops))
	if a.Truncated > 0 || a.DroppedUnknown {
		tab.AddNote("excluded %d truncated traces (%d orphan spans, %d rootless); dropped-trace set overflowed: %v",
			a.Truncated, a.Orphans, a.Rootless, a.DroppedUnknown)
	}
	return tab
}

// BudgetTable renders the aggregate per-phase attribution: critical,
// delegated and overlapped time per phase, with critical's share of total
// wall — the op latency budget the regression gate watches.
func (a *Analysis) BudgetTable(title string) *metrics.Table {
	tab := metrics.NewTable(title,
		"phase", "spans", "critical ms", "share %", "delegated ms", "overlap ms")
	for pi, pt := range a.ByPhase {
		if pt.Spans == 0 && pt.Critical == 0 {
			continue
		}
		share := 0.0
		if a.Wall > 0 {
			share = 100 * float64(pt.Critical) / float64(a.Wall)
		}
		tab.AddRow(phaseName(pi),
			fmt.Sprintf("%d", pt.Spans),
			fmt.Sprintf("%.3f", pt.Critical.Millis()),
			fmt.Sprintf("%.1f", share),
			fmt.Sprintf("%.3f", pt.Delegated.Millis()),
			fmt.Sprintf("%.3f", pt.Overlap.Millis()))
	}
	tab.AddNote("%d ops, total wall %.3f ms fully attributed; critical sums tile wall exactly (Check: %v)",
		len(a.Ops), a.Wall.Millis(), a.Check() == nil)
	return tab
}

// WriteFolded writes the aggregate critical path in stacks.folded format —
// one "frame;frame;frame <weight>" line per distinct span-name stack,
// sorted — loadable by any flame-graph tool (weights are nanoseconds of
// virtual time on the critical path, so the flame graph is a sim-time
// latency profile, not a sample profile).
func (a *Analysis) WriteFolded(w io.Writer) error {
	keys := make([]string, 0, len(a.folded))
	for k := range a.folded {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	bw := bufio.NewWriter(w)
	for _, k := range keys {
		if _, err := fmt.Fprintf(bw, "%s %d\n", k, a.folded[k]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// FoldedStacks returns the folded-stack weights (nanoseconds of critical
// time per stack), for tests and programmatic consumers.
func (a *Analysis) FoldedStacks() map[string]int64 {
	out := make(map[string]int64, len(a.folded))
	for k, v := range a.folded {
		out[k] = v
	}
	return out
}

// Summary returns a one-line description of the analysis for status
// output.
func (a *Analysis) Summary() string {
	return fmt.Sprintf("critpath: %d ops analyzed (wall %.3f ms), %d truncated, %d non-op traces, %d orphan spans",
		len(a.Ops), a.Wall.Millis(), a.Truncated, a.NonOp, a.Orphans)
}

// RenderPath writes one op's critical path as an indented timeline:
// header, then one line per segment with offset, length, phase and span.
func (a *Analysis) RenderPath(w io.Writer, traceID uint64) error {
	op, segs, ok := a.PathFor(traceID)
	if !ok {
		return fmt.Errorf("critpath: trace %d not analyzed (unknown, truncated, or not an op trace)", traceID)
	}
	detail := op.Detail
	if detail != "" {
		detail = " " + detail
	}
	fmt.Fprintf(w, "critical path — trace %d: %s%s @%s, wall %.3f ms (queue %.3f + service %.3f; %.3f ms overlapped off-path)\n",
		op.Trace, op.Name, detail, op.Where, op.Wall.Millis(), op.Queue.Millis(), op.Service.Millis(), op.Overlap.Millis())
	fmt.Fprintf(w, "  %9s %9s  %-10s %s\n", "t+ms", "ms", "phase", "span")
	for _, s := range segs {
		label := s.Name
		if s.Where != "" {
			label += " @" + s.Where
		}
		if s.Detail != "" {
			label += " (" + s.Detail + ")"
		}
		fmt.Fprintf(w, "  %9.3f %9.3f  %-10s %s%s\n",
			s.Start.Sub(op.Start).Millis(), s.Duration().Millis(),
			string(s.Phase), strings.Repeat("  ", s.Depth), label)
	}
	return nil
}
