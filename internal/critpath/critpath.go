// Package critpath reconstructs each traced operation's span DAG and
// computes its critical path: the chain of spans that actually bounded the
// op's latency. Per-phase histograms (internal/trace) say where time was
// spent in aggregate; they cannot say which stage a given op was *waiting
// on*, because concurrent children (parallel per-block reads, replication
// fan-out) overlap and inclusive span durations double-count the
// hierarchy. The critical path removes both ambiguities: every instant of
// an op's wall time is attributed to exactly one span — the deepest span
// that was last to finish at that instant — so attribution sums exactly to
// wall time and phases never double-count.
//
// The attribution of one span's time window splits three ways:
//
//   - critical: instants attributed to the span itself (its service or
//     queue time bounded the op right then);
//   - delegated: instants inside the span's window handed down to a child
//     span on the path (a coherence exchange whose time is really the
//     nested fabric RPC's);
//   - overlapped: span time off the path entirely — work hidden behind a
//     concurrent sibling that finished later. Overlap is real resource
//     usage but not latency: shortening it does not move the op.
//
// So for every span, duration = critical + delegated + overlapped, and for
// every op, wall = Σ critical over the trace — the two identities
// Analysis.Check verifies and `make analyze-smoke` gates.
//
// Like the tracer it reads, the analyzer is deterministic: same spans in,
// byte-identical tables, folded stacks and renders out.
package critpath

import (
	"fmt"
	"sort"

	"repro/internal/sim"
	"repro/internal/trace"
)

// Segment is one contiguous stretch of an op's critical path, attributed
// to a single span. Segments tile the op's wall time exactly.
type Segment struct {
	SpanID uint64
	Name   string
	Phase  trace.Phase
	Where  string
	Detail string
	Depth  int // nesting depth under the op root (root = 0)
	Start  sim.Time
	End    sim.Time
}

// Duration returns the segment's length.
func (s Segment) Duration() sim.Duration { return s.End.Sub(s.Start) }

// OpPath is one analyzed op: its identity plus the critical-path totals.
type OpPath struct {
	Trace  uint64
	Name   string
	Where  string
	Detail string
	Start  sim.Time
	Wall   sim.Duration
	// Queue is critical time spent in Queue-phase spans (waiting for a
	// contended resource); Service is critical time in every other phase.
	// Queue + Service == Wall.
	Queue   sim.Duration
	Service sim.Duration
	// Overlap is span time off the critical path — concurrent work the op
	// did not wait for. It can exceed Wall on wide fan-outs.
	Overlap sim.Duration
	// Crit is the per-phase critical time, aligned with trace.Phases.
	Crit []sim.Duration
}

// CritFor returns the op's critical time attributed to phase ph.
func (o *OpPath) CritFor(ph trace.Phase) sim.Duration {
	for i, p := range trace.Phases {
		if p == ph {
			return o.Crit[i]
		}
	}
	return 0
}

// PhaseTotals aggregates one phase's accounting across all analyzed ops.
type PhaseTotals struct {
	Spans     int64        // completed spans in analyzed op traces
	Total     sim.Duration // inclusive span time (the tracer histogram's view)
	Critical  sim.Duration // attributed to the phase on the critical path
	Delegated sim.Duration // on the path but handed down to child spans
	Overlap   sim.Duration // off the path: hidden behind concurrent siblings
}

// Analysis is the result of analyzing a span log.
type Analysis struct {
	// Ops lists every complete op trace in root-end order (deterministic).
	Ops []OpPath
	// ByPhase aggregates attribution per phase, aligned with trace.Phases.
	ByPhase []PhaseTotals
	// Wall is the summed wall time of all analyzed ops.
	Wall sim.Duration

	// Truncated counts op traces excluded from attribution because spans
	// were lost — to the tracer's retention cap (per the dropped-trace
	// markers) or structurally (orphaned spans, missing roots). Silently
	// attributing a partial DAG would skew every share downward, so these
	// are counted, never analyzed.
	Truncated int
	// Orphans counts retained spans whose parent never made the log.
	Orphans int
	// Rootless counts traces that have spans but no root span.
	Rootless int
	// NonOp counts complete traces rooted outside the op path (watchdog
	// markers, balancer migrations); they are not ops and not analyzed.
	NonOp int
	// DroppedUnknown is set when the tracer's dropped-trace set
	// overflowed: some traces may be silently incomplete and the Truncated
	// count is a lower bound.
	DroppedUnknown bool

	folded  map[string]int64 // folded-stack key -> critical ns
	spans   []trace.Span
	byTrace map[uint64][]int // trace id -> indices into spans, log order
	opIdx   map[uint64]int   // trace id -> index into Ops
}

// phaseIdx maps a phase to its index in trace.Phases (len(trace.Phases)
// for an unknown phase, which callers treat as "other").
func phaseIdx(ph trace.Phase) int {
	for i, p := range trace.Phases {
		if p == ph {
			return i
		}
	}
	return len(trace.Phases)
}

// FromTracer analyzes t's retained span log, honouring its dropped-trace
// markers. A nil tracer yields an empty analysis.
func FromTracer(t *trace.Tracer) *Analysis {
	if t == nil {
		return Analyze(nil, nil)
	}
	a := Analyze(t.Spans(), t.TraceDropped)
	a.DroppedUnknown = t.DroppedTraceOverflow()
	// A trace that lost every span to the cap is invisible in the log;
	// only the tracer's dropped set knows it existed. Count those too.
	for _, id := range t.DroppedTraces() {
		if _, inLog := a.byTrace[id]; !inLog {
			a.Truncated++
		}
	}
	return a
}

// Analyze reconstructs every trace in spans and attributes each complete
// op trace's wall time along its critical path. dropped, when non-nil,
// reports whether a trace id lost spans to the retention cap; such traces
// are excluded and counted as truncated.
func Analyze(spans []trace.Span, dropped func(uint64) bool) *Analysis {
	a := &Analysis{
		ByPhase: make([]PhaseTotals, len(trace.Phases)+1),
		folded:  make(map[string]int64),
		spans:   spans,
		byTrace: make(map[uint64][]int),
		opIdx:   make(map[uint64]int),
	}
	// Group spans by trace, keeping log (end) order within each trace.
	traceOrder := []uint64{}
	for i, s := range spans {
		if _, ok := a.byTrace[s.Trace]; !ok {
			traceOrder = append(traceOrder, s.Trace)
		}
		a.byTrace[s.Trace] = append(a.byTrace[s.Trace], i)
	}
	// Analyze traces in first-seen order: deterministic, and close to
	// root-end order. Ops are then re-sorted by root end explicitly.
	for _, id := range traceOrder {
		a.analyzeTrace(id, dropped)
	}
	sort.SliceStable(a.Ops, func(i, j int) bool {
		ei := a.Ops[i].Start.Add(a.Ops[i].Wall)
		ej := a.Ops[j].Start.Add(a.Ops[j].Wall)
		if ei != ej {
			return ei < ej
		}
		return a.Ops[i].Trace < a.Ops[j].Trace
	})
	for i := range a.Ops {
		a.opIdx[a.Ops[i].Trace] = i
	}
	return a
}

// node is one span in a reconstructed trace tree. window accumulates the
// stretch of the op's critical path that recursed into this span.
type node struct {
	span     trace.Span
	logIdx   int
	children []*node
	window   sim.Duration
}

// buildTree reconstructs the span tree for one trace. It returns the root
// and the orphan count (spans whose parent is missing from the log).
func (a *Analysis) buildTree(id uint64) (root *node, orphans int) {
	idxs := a.byTrace[id]
	nodes := make(map[uint64]*node, len(idxs))
	for _, i := range idxs {
		s := a.spans[i]
		nodes[s.ID] = &node{span: s, logIdx: i}
	}
	for _, i := range idxs {
		s := a.spans[i]
		n := nodes[s.ID]
		if s.Parent == 0 {
			root = n
			continue
		}
		p, ok := nodes[s.Parent]
		if !ok {
			orphans++
			continue
		}
		p.children = append(p.children, n)
	}
	// Children sorted by end, latest first; ties broken by log position,
	// where a later index ended later in kernel scheduling order. The
	// backward walk then always picks the child that finished last.
	var sortChildren func(n *node)
	sortChildren = func(n *node) {
		sort.Slice(n.children, func(i, j int) bool {
			ci, cj := n.children[i], n.children[j]
			if ci.span.End != cj.span.End {
				return ci.span.End > cj.span.End
			}
			return ci.logIdx > cj.logIdx
		})
		for _, c := range n.children {
			sortChildren(c)
		}
	}
	if root != nil {
		sortChildren(root)
	}
	return root, orphans
}

// analyzeTrace classifies one trace and, if it is a complete op trace,
// attributes its critical path into the aggregates.
func (a *Analysis) analyzeTrace(id uint64, dropped func(uint64) bool) {
	root, orphans := a.buildTree(id)
	a.Orphans += orphans
	if dropped != nil && dropped(id) {
		a.Truncated++
		return
	}
	if root == nil {
		a.Rootless++
		a.Truncated++
		return
	}
	if orphans > 0 {
		a.Truncated++
		return
	}
	if root.span.Phase != trace.Op {
		a.NonOp++
		return
	}

	op := OpPath{
		Trace:  id,
		Name:   root.span.Name,
		Where:  root.span.Where,
		Detail: root.span.Detail,
		Start:  root.span.Start,
		Wall:   root.span.Duration(),
		Crit:   make([]sim.Duration, len(trace.Phases)+1),
	}
	// Inclusive per-phase totals, computed independently of the walk so
	// Check has two genuinely separate accountings to compare.
	for _, i := range a.byTrace[id] {
		s := a.spans[i]
		pi := phaseIdx(s.Phase)
		a.ByPhase[pi].Spans++
		a.ByPhase[pi].Total += s.Duration()
	}

	w := walker{a: a, op: &op}
	w.walk(root, root.span.Start, root.span.End, nil)
	// Everything recursed into was marked; the rest of each span's
	// duration is overlap. The walk marks windows per node, so sweep once.
	w.sweepOverlap(root)

	for pi, d := range op.Crit {
		a.ByPhase[pi].Critical += d
		if pi < len(trace.Phases) && trace.Phases[pi] == trace.Queue {
			op.Queue += d
		} else {
			op.Service += d
		}
	}
	a.Wall += op.Wall
	a.Ops = append(a.Ops, op)
}

// walker attributes one op trace's critical path.
type walker struct {
	a  *Analysis
	op *OpPath
	// segs, when non-nil, collects the path's segments (single-op render).
	segs *[]Segment
}

// walk attributes window [winStart, winEnd] of n's time, recursing into
// the children that bounded it. stack is the chain of span names from the
// root down to n's parent.
func (w *walker) walk(n *node, winStart, winEnd sim.Time, stack []string) {
	n.window += winEnd.Sub(winStart)
	stack = append(stack, n.span.Name)
	cur := winEnd
	for _, ch := range n.children {
		if cur <= winStart {
			break
		}
		effEnd := ch.span.End
		if effEnd > cur {
			effEnd = cur
		}
		effStart := ch.span.Start
		if effStart < winStart {
			effStart = winStart
		}
		if effEnd <= effStart || effEnd <= winStart {
			continue
		}
		if effEnd < cur {
			// The gap after this child closed is n's own time.
			w.attribute(n, effEnd, cur, stack)
		}
		w.walk(ch, effStart, effEnd, stack)
		cur = effStart
	}
	if cur > winStart {
		w.attribute(n, winStart, cur, stack)
	}
}

// attribute credits [from, to] of the op's wall time to span n.
func (w *walker) attribute(n *node, from, to sim.Time, stack []string) {
	d := to.Sub(from)
	if d <= 0 {
		return
	}
	pi := phaseIdx(n.span.Phase)
	w.op.Crit[pi] += d
	w.a.ByPhase[pi].Delegated -= d // critical is not delegated; see sweepOverlap
	key := foldKey(stack)
	w.a.folded[key] += int64(d)
	if w.segs != nil {
		*w.segs = append(*w.segs, Segment{
			SpanID: n.span.ID,
			Name:   n.span.Name,
			Phase:  n.span.Phase,
			Where:  n.span.Where,
			Detail: n.span.Detail,
			Depth:  len(stack) - 1,
			Start:  from,
			End:    to,
		})
	}
}

// sweepOverlap finalizes per-span accounting after a walk: a span's window
// (time the path recursed into it) splits into critical (already credited)
// and delegated; the remainder of its duration is overlap. Delegated was
// pre-decremented by attribute, so adding the full window here nets out.
func (w *walker) sweepOverlap(n *node) {
	pi := phaseIdx(n.span.Phase)
	w.a.ByPhase[pi].Delegated += n.window
	w.a.ByPhase[pi].Overlap += n.span.Duration() - n.window
	w.op.Overlap += n.span.Duration() - n.window
	for _, c := range n.children {
		w.sweepOverlap(c)
	}
}

// foldKey renders a stack as a stacks.folded frame chain.
func foldKey(stack []string) string {
	n := 0
	for _, s := range stack {
		n += len(s) + 1
	}
	b := make([]byte, 0, n)
	for i, s := range stack {
		if i > 0 {
			b = append(b, ';')
		}
		b = append(b, s...)
	}
	return string(b)
}

// Check verifies the two accounting identities over the whole analysis:
// every op's wall time is fully attributed (Σ critical == Σ wall), and no
// phase double-counts (critical + delegated + overlap == the phase's
// inclusive span time, the tracer histogram's view). A non-nil error means
// the analyzer itself is broken, never the workload.
func (a *Analysis) Check() error {
	var crit sim.Duration
	for _, pt := range a.ByPhase {
		crit += pt.Critical
		if got, want := pt.Critical+pt.Delegated+pt.Overlap, pt.Total; got != want {
			return fmt.Errorf("critpath: phase accounting off: critical %v + delegated %v + overlap %v != inclusive %v",
				pt.Critical, pt.Delegated, pt.Overlap, pt.Total)
		}
	}
	if crit != a.Wall {
		return fmt.Errorf("critpath: attribution does not tile wall time: Σ critical %v != Σ wall %v", crit, a.Wall)
	}
	var perOp sim.Duration
	for i := range a.Ops {
		op := &a.Ops[i]
		var sum sim.Duration
		for _, d := range op.Crit {
			sum += d
		}
		if sum != op.Wall {
			return fmt.Errorf("critpath: trace %d attributed %v of %v wall", op.Trace, sum, op.Wall)
		}
		if op.Queue+op.Service != op.Wall {
			return fmt.Errorf("critpath: trace %d queue %v + service %v != wall %v", op.Trace, op.Queue, op.Service, op.Wall)
		}
		perOp += op.Wall
	}
	if perOp != a.Wall {
		return fmt.Errorf("critpath: op walls sum to %v, analysis says %v", perOp, a.Wall)
	}
	return nil
}

// PathFor re-walks one analyzed op and returns its ordered critical-path
// segments (earliest first). The bool reports whether the trace was
// analyzed (false for truncated, non-op or unknown traces).
func (a *Analysis) PathFor(traceID uint64) (OpPath, []Segment, bool) {
	i, ok := a.opIdx[traceID]
	if !ok {
		return OpPath{}, nil, false
	}
	op := a.Ops[i]
	root, _ := a.buildTree(traceID)
	segs := []Segment{}
	// Re-walk with segment collection on a scratch op so aggregate totals
	// are not double-counted.
	scratch := OpPath{Crit: make([]sim.Duration, len(trace.Phases)+1)}
	w := walker{a: &Analysis{ByPhase: make([]PhaseTotals, len(trace.Phases)+1), folded: map[string]int64{}}, op: &scratch, segs: &segs}
	w.walk(root, root.span.Start, root.span.End, nil)
	sort.Slice(segs, func(i, j int) bool {
		if segs[i].Start != segs[j].Start {
			return segs[i].Start < segs[j].Start
		}
		return segs[i].Depth < segs[j].Depth
	})
	return op, segs, true
}
