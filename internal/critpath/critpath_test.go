package critpath

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/sim"
	"repro/internal/trace"
)

// span is a test shorthand for building span logs by hand. Spans must be
// appended in end order (the tracer's log order).
func span(traceID, id, parent uint64, name string, ph trace.Phase, start, end int64) trace.Span {
	return trace.Span{Trace: traceID, ID: id, Parent: parent, Name: name, Phase: ph,
		Start: sim.Time(start), End: sim.Time(end)}
}

func mustCheck(t *testing.T, a *Analysis) {
	t.Helper()
	if err := a.Check(); err != nil {
		t.Fatal(err)
	}
}

// TestLinearChain: op → queue → disk nested sequentially. Every span's
// self time lands in its own phase.
func TestLinearChain(t *testing.T) {
	spans := []trace.Span{
		span(1, 3, 2, "disk", trace.Disk, 20, 60),
		span(1, 2, 1, "wait", trace.Queue, 10, 80),
		span(1, 1, 0, "read", trace.Op, 0, 100),
	}
	a := Analyze(spans, nil)
	mustCheck(t, a)
	if len(a.Ops) != 1 {
		t.Fatalf("ops = %d, want 1", len(a.Ops))
	}
	op := a.Ops[0]
	if op.Wall != 100 {
		t.Fatalf("wall = %d", op.Wall)
	}
	// disk owns [20,60); queue owns [10,20) and [60,80); op owns [0,10) and [80,100).
	if got := op.CritFor(trace.Disk); got != 40 {
		t.Errorf("disk critical = %d, want 40", got)
	}
	if got := op.CritFor(trace.Queue); got != 30 {
		t.Errorf("queue critical = %d, want 30", got)
	}
	if got := op.CritFor(trace.Op); got != 30 {
		t.Errorf("op self critical = %d, want 30", got)
	}
	if op.Queue != 30 || op.Service != 70 {
		t.Errorf("queue/service = %d/%d, want 30/70", op.Queue, op.Service)
	}
	if op.Overlap != 0 {
		t.Errorf("overlap = %d, want 0", op.Overlap)
	}
	// Delegated: wait delegated 40 to disk; read delegated 70 to wait.
	if got := a.ByPhase[phaseIdx(trace.Queue)].Delegated; got != 40 {
		t.Errorf("queue delegated = %d, want 40", got)
	}
	if got := a.ByPhase[phaseIdx(trace.Op)].Delegated; got != 70 {
		t.Errorf("op delegated = %d, want 70", got)
	}
}

// TestParallelChildren: two concurrent children; the later-finishing one
// owns the shared interval, the other becomes overlap.
func TestParallelChildren(t *testing.T) {
	spans := []trace.Span{
		span(1, 2, 1, "fab-a", trace.Fabric, 10, 50),
		span(1, 3, 1, "fab-b", trace.Fabric, 10, 90),
		span(1, 1, 0, "read", trace.Op, 0, 100),
	}
	a := Analyze(spans, nil)
	mustCheck(t, a)
	op := a.Ops[0]
	// fab-b (ends 90) owns [10,90); fab-a is fully hidden behind it.
	if got := op.CritFor(trace.Fabric); got != 80 {
		t.Errorf("fabric critical = %d, want 80", got)
	}
	if op.Overlap != 40 {
		t.Errorf("overlap = %d, want 40 (all of fab-a)", op.Overlap)
	}
	ft := a.ByPhase[phaseIdx(trace.Fabric)]
	if ft.Critical != 80 || ft.Overlap != 40 || ft.Delegated != 0 {
		t.Errorf("fabric totals = %+v", ft)
	}
	if ft.Critical+ft.Delegated+ft.Overlap != ft.Total {
		t.Errorf("fabric identity broken: %+v", ft)
	}
}

// TestPartialOverlap: children overlap partially; the backward walk splits
// the window at the later child's start.
func TestPartialOverlap(t *testing.T) {
	spans := []trace.Span{
		span(1, 2, 1, "fab-a", trace.Fabric, 10, 60),
		span(1, 3, 1, "fab-b", trace.Fabric, 40, 90),
		span(1, 1, 0, "read", trace.Op, 0, 100),
	}
	a := Analyze(spans, nil)
	mustCheck(t, a)
	op := a.Ops[0]
	// fab-b owns [40,90) = 50; fab-a owns [10,40) = 30; overlap = fab-a's [40,60) = 20.
	if got := op.CritFor(trace.Fabric); got != 80 {
		t.Errorf("fabric critical = %d, want 80", got)
	}
	if op.Overlap != 20 {
		t.Errorf("overlap = %d, want 20", op.Overlap)
	}
}

// TestAsyncChildIgnored: a fire-and-forget handler span hangs off an
// instant dispatch span and finishes after the op root. Its time is pure
// overlap — never critical — and identities still hold.
func TestAsyncChildIgnored(t *testing.T) {
	spans := []trace.Span{
		span(1, 2, 1, "rpc-go", trace.Fabric, 30, 30), // instant dispatch
		span(1, 1, 0, "write", trace.Op, 0, 100),
		span(1, 3, 2, "handler", trace.Coherence, 60, 150), // ends after root
	}
	a := Analyze(spans, nil)
	mustCheck(t, a)
	op := a.Ops[0]
	if got := op.CritFor(trace.Op); got != 100 {
		t.Errorf("op self critical = %d, want 100 (async work must not steal the path)", got)
	}
	if got := op.CritFor(trace.Coherence); got != 0 {
		t.Errorf("coherence critical = %d, want 0", got)
	}
	if op.Overlap != 90 {
		t.Errorf("overlap = %d, want 90 (the whole handler)", op.Overlap)
	}
}

// TestDeepDelegation: coherence wraps fabric (inclusive duration); the
// fabric leaf owns its window, coherence only its residue — no
// double-count between the two phases.
func TestDeepDelegation(t *testing.T) {
	spans := []trace.Span{
		span(1, 3, 2, "rpc", trace.Fabric, 25, 70),
		span(1, 2, 1, "getx", trace.Coherence, 20, 80),
		span(1, 1, 0, "write", trace.Op, 0, 100),
	}
	a := Analyze(spans, nil)
	mustCheck(t, a)
	op := a.Ops[0]
	if got := op.CritFor(trace.Fabric); got != 45 {
		t.Errorf("fabric critical = %d, want 45", got)
	}
	if got := op.CritFor(trace.Coherence); got != 15 {
		t.Errorf("coherence critical = %d, want 15 ([20,25)+[70,80))", got)
	}
	ct := a.ByPhase[phaseIdx(trace.Coherence)]
	if ct.Delegated != 45 {
		t.Errorf("coherence delegated = %d, want 45", ct.Delegated)
	}
	// Sum over phases of critical equals wall; inclusive totals would have
	// been 60 (coherence) + 45 (fabric) > wall — the double-count the
	// critical path removes.
	if a.Wall != 100 {
		t.Errorf("wall = %d", a.Wall)
	}
}

// TestOrphanTruncated: a span whose parent never made the log marks the
// trace truncated and excludes it from attribution.
func TestOrphanTruncated(t *testing.T) {
	spans := []trace.Span{
		span(1, 3, 2, "disk", trace.Disk, 20, 60), // parent 2 missing
		span(1, 1, 0, "read", trace.Op, 0, 100),
		span(2, 4, 0, "read", trace.Op, 0, 50),
	}
	a := Analyze(spans, nil)
	mustCheck(t, a)
	if a.Truncated != 1 || a.Orphans != 1 {
		t.Fatalf("truncated/orphans = %d/%d, want 1/1", a.Truncated, a.Orphans)
	}
	if len(a.Ops) != 1 || a.Ops[0].Trace != 2 {
		t.Fatalf("ops = %+v, want only trace 2", a.Ops)
	}
	if a.Wall != 50 {
		t.Errorf("wall = %d, want 50 (truncated trace excluded)", a.Wall)
	}
}

// TestRootlessTruncated: spans with no root span count as rootless.
func TestRootlessTruncated(t *testing.T) {
	spans := []trace.Span{
		span(7, 3, 2, "disk", trace.Disk, 20, 60),
	}
	a := Analyze(spans, nil)
	mustCheck(t, a)
	if a.Rootless != 1 || a.Truncated != 1 {
		t.Fatalf("rootless/truncated = %d/%d, want 1/1", a.Rootless, a.Truncated)
	}
}

// TestDroppedMarker: the dropped predicate excludes a structurally intact
// trace — the case (dropped leaf) structure alone cannot detect.
func TestDroppedMarker(t *testing.T) {
	spans := []trace.Span{
		span(1, 1, 0, "read", trace.Op, 0, 100),
		span(2, 2, 0, "read", trace.Op, 0, 50),
	}
	a := Analyze(spans, func(id uint64) bool { return id == 1 })
	mustCheck(t, a)
	if a.Truncated != 1 {
		t.Fatalf("truncated = %d, want 1", a.Truncated)
	}
	if len(a.Ops) != 1 || a.Ops[0].Trace != 2 {
		t.Fatalf("ops = %+v", a.Ops)
	}
}

// TestNonOpTraces: watchdog/balance-rooted traces are counted, not analyzed.
func TestNonOpTraces(t *testing.T) {
	spans := []trace.Span{
		span(1, 1, 0, "slo-breach", trace.Watchdog, 10, 10),
		span(2, 2, 0, "migrate", trace.Balance, 0, 40),
	}
	a := Analyze(spans, nil)
	mustCheck(t, a)
	if a.NonOp != 2 || len(a.Ops) != 0 {
		t.Fatalf("nonop/ops = %d/%d, want 2/0", a.NonOp, len(a.Ops))
	}
	if a.ByPhase[phaseIdx(trace.Watchdog)].Total != 0 {
		t.Error("non-op spans must not enter phase totals")
	}
}

// TestFoldedStacks: folded keys are full name chains and weights are the
// critical nanoseconds attributed at that stack.
func TestFoldedStacks(t *testing.T) {
	spans := []trace.Span{
		span(1, 3, 2, "rpc", trace.Fabric, 25, 70),
		span(1, 2, 1, "getx", trace.Coherence, 20, 80),
		span(1, 1, 0, "write", trace.Op, 0, 100),
	}
	a := Analyze(spans, nil)
	folded := a.FoldedStacks()
	want := map[string]int64{
		"write":          40,
		"write;getx":     15,
		"write;getx;rpc": 45,
	}
	for k, v := range want {
		if folded[k] != v {
			t.Errorf("folded[%q] = %d, want %d (all: %v)", k, folded[k], v, folded)
		}
	}
	var buf bytes.Buffer
	if err := a.WriteFolded(&buf); err != nil {
		t.Fatal(err)
	}
	wantOut := "write 40\nwrite;getx 15\nwrite;getx;rpc 45\n"
	if buf.String() != wantOut {
		t.Errorf("folded output:\n%s\nwant:\n%s", buf.String(), wantOut)
	}
}

// TestPathForSegments: PathFor returns ordered segments tiling the wall.
func TestPathForSegments(t *testing.T) {
	spans := []trace.Span{
		span(1, 3, 2, "disk", trace.Disk, 20, 60),
		span(1, 2, 1, "wait", trace.Queue, 10, 80),
		span(1, 1, 0, "read", trace.Op, 0, 100),
	}
	a := Analyze(spans, nil)
	op, segs, ok := a.PathFor(1)
	if !ok {
		t.Fatal("PathFor(1) not found")
	}
	var total sim.Duration
	prevEnd := op.Start
	for _, s := range segs {
		if s.Start < prevEnd {
			t.Errorf("segment %+v overlaps previous end %d", s, prevEnd)
		}
		total += s.Duration()
		prevEnd = s.End
	}
	if total != op.Wall {
		t.Errorf("segments tile %d of %d wall", total, op.Wall)
	}
	if _, _, ok := a.PathFor(999); ok {
		t.Error("PathFor(999) should miss")
	}
	var buf bytes.Buffer
	if err := a.RenderPath(&buf, 1); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"trace 1", "wall 0.000 ms", "disk", "wait"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("render missing %q:\n%s", want, buf.String())
		}
	}
	if err := a.RenderPath(&buf, 999); err == nil {
		t.Error("RenderPath(999) should error")
	}
}

// TestCohortsAndTables: enough ops for distinct p50/p99 cohorts, and the
// tables render deterministically.
func TestCohortsAndTables(t *testing.T) {
	var spans []trace.Span
	// 100 ops: wall = 10*(i+1), each with one disk child covering half.
	var next uint64 = 1
	for i := 0; i < 100; i++ {
		tr := next
		wall := int64(10 * (i + 1))
		spans = append(spans,
			span(tr, next+1, tr, "disk", trace.Disk, 0, wall/2),
			span(tr, next, 0, "read", trace.Op, 0, wall),
		)
		next += 2
	}
	a := Analyze(spans, nil)
	mustCheck(t, a)
	median, tail := a.Cohorts()
	if median.Ops == 0 || tail.Ops == 0 {
		t.Fatalf("empty cohort: median %d tail %d", median.Ops, tail.Ops)
	}
	if tail.MeanWall <= median.MeanWall {
		t.Errorf("tail mean %d should exceed median mean %d", tail.MeanWall, median.MeanWall)
	}
	// Shares sum to 100% of mean wall for each cohort.
	var sum float64
	for pi := range median.Crit {
		sum += median.Share(pi)
	}
	if sum < 99.9 || sum > 100.1 {
		t.Errorf("median shares sum to %.2f%%", sum)
	}
	t1 := a.TailTable("t").String()
	t2 := a.TailTable("t").String()
	b1 := a.BudgetTable("b").String()
	if t1 != t2 {
		t.Error("TailTable not deterministic")
	}
	if !strings.Contains(t1, "disk") || !strings.Contains(b1, "disk") {
		t.Error("tables missing disk row")
	}
	if !strings.Contains(b1, "Check: true") {
		t.Errorf("budget table should report Check passing:\n%s", b1)
	}
}

// TestAnalyzeDeterministic: same span log → byte-identical folded output,
// tables and summary.
func TestAnalyzeDeterministic(t *testing.T) {
	spans := []trace.Span{
		span(1, 2, 1, "fab-a", trace.Fabric, 10, 50),
		span(1, 3, 1, "fab-b", trace.Fabric, 10, 90),
		span(1, 1, 0, "read", trace.Op, 0, 100),
		span(2, 5, 4, "disk", trace.Disk, 5, 45),
		span(2, 4, 0, "write", trace.Op, 0, 60),
	}
	render := func() string {
		a := Analyze(spans, nil)
		var buf bytes.Buffer
		if err := a.WriteFolded(&buf); err != nil {
			t.Fatal(err)
		}
		buf.WriteString(a.TailTable("tail").String())
		buf.WriteString(a.BudgetTable("budget").String())
		buf.WriteString(a.Summary())
		return buf.String()
	}
	if render() != render() {
		t.Error("analysis output not deterministic")
	}
}

// TestFromTracerCapOverflow overflows a small span cap mid-op and checks
// the analyzer excludes exactly the truncated traces via the tracer's
// dropped markers — structure alone would miss dropped leaves.
func TestFromTracerCapOverflow(t *testing.T) {
	k := sim.NewKernel(1)
	defer k.Close()
	tr := trace.NewTracer(k)
	tr.SetEnabled(true)
	tr.SetCap(5)
	k.Go("ops", func(p *sim.Proc) {
		for i := 0; i < 4; i++ {
			root := tr.StartTrace("read", trace.Op, "b0")
			child := root.Child("disk", trace.Disk, "b0")
			p.Sleep(10)
			child.End() // 4 ops x 2 spans = 8 > cap 5
			p.Sleep(5)
			root.End()
		}
	})
	k.Run()
	if tr.Dropped() == 0 {
		t.Fatal("expected span drops")
	}
	a := FromTracer(tr)
	mustCheck(t, a)
	if a.Truncated == 0 {
		t.Fatal("expected truncated traces")
	}
	// Every analyzed op must be complete: wall fully attributed (Check
	// above) and 2 spans' worth of phase totals per op.
	if got := len(a.Ops) + a.Truncated; got != 4 {
		t.Errorf("ops + truncated = %d, want 4", got)
	}
}

// TestDefaultCapOverflowMidOp is the satellite regression test at real
// cap scale: overflow trace.DefaultCap mid-op and verify no silent skew.
func TestDefaultCapOverflowMidOp(t *testing.T) {
	if testing.Short() {
		t.Skip("DefaultCap overflow is slow under -race")
	}
	k := sim.NewKernel(1)
	defer k.Close()
	tr := trace.NewTracer(k)
	tr.SetEnabled(true)
	n := trace.DefaultCap/2 + 100 // 2 spans per op → overflows mid-run
	k.Go("ops", func(p *sim.Proc) {
		for i := 0; i < n; i++ {
			root := tr.StartTrace("read", trace.Op, "b0")
			child := root.Child("disk", trace.Disk, "b0")
			p.Sleep(10)
			child.End()
			root.End()
		}
	})
	k.Run()
	if tr.Dropped() == 0 {
		t.Fatal("expected drops past DefaultCap")
	}
	a := FromTracer(tr)
	mustCheck(t, a)
	if a.Truncated == 0 {
		t.Fatal("expected truncated traces")
	}
	if got := len(a.Ops) + a.Truncated; got != n {
		t.Errorf("ops %d + truncated %d != %d started", len(a.Ops), a.Truncated, n)
	}
	// Attribution must only cover complete ops: wall = 10ns per op.
	if a.Wall != sim.Duration(10*len(a.Ops)) {
		t.Errorf("wall %d != 10 * %d analyzed ops", a.Wall, len(a.Ops))
	}
}

// TestEmptyAnalysis: nil input stays well-formed.
func TestEmptyAnalysis(t *testing.T) {
	a := FromTracer(nil)
	mustCheck(t, a)
	if len(a.Ops) != 0 || a.Wall != 0 {
		t.Fatalf("empty analysis: %+v", a)
	}
	if s := a.Summary(); !strings.Contains(s, "0 ops") {
		t.Errorf("summary: %s", s)
	}
	median, tail := a.Cohorts()
	if median.Ops != 0 || tail.Ops != 0 {
		t.Error("cohorts of empty analysis should be empty")
	}
	_ = a.TailTable("t").String()
	_ = a.BudgetTable("b").String()
}
