GO ?= go
FUZZTIME ?= 10s

.PHONY: all build vet test race verify bench snapshot experiments fuzz-smoke qos-smoke batch-smoke governor-smoke bench-check

all: verify

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test -timeout 20m ./...

race:
	$(GO) test -race -short ./...

# verify is the tier-1 gate: everything a PR must keep green.
verify: build vet test race

bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' .

# snapshot writes the per-PR perf record: the canonical workload run
# unbatched and on the batched fabric plane (per-phase p50/p99 +
# throughput, plus the E12 balance, E13 QoS and E14 governor summaries),
# diffed against the previous PR's committed record.
snapshot:
	$(GO) run ./cmd/benchrunner -snapshot BENCH_PR7.json -baseline BENCH_PR6.json

# bench-check regenerates the snapshot into a scratch file and diffs it
# against the committed BENCH_PR7.json: a fabric p99 regression over 10%
# on either plane — or an E14 PI victim p99 regression over 10% — fails
# loudly.
bench-check:
	$(GO) run ./cmd/benchrunner -snapshot /tmp/bench_check.json -baseline BENCH_PR7.json

# qos-smoke runs the reduced-scale multi-tenant isolation experiment —
# the CI gate that admission control and fair queueing still isolate.
qos-smoke:
	$(GO) run ./cmd/benchrunner -only E13Q

# governor-smoke runs the reduced-scale governor step-response A/B: the
# per-tenant PI controller against the legacy halve/double law under
# identical step and burst aggressors.
governor-smoke:
	$(GO) run ./cmd/benchrunner -only E14Q

# batch-smoke is the CI gate for the batched fabric plane: frame
# coalescing semantics, the batched/unbatched convergence property, and
# the yottactl batch toggle.
batch-smoke:
	$(GO) test -count=1 -run 'TestFrame|TestBatch|TestSetBatchingOffFlushes|TestGoPropagates|TestDup|TestRetryCounter' ./internal/simnet ./internal/coherence ./cmd/yottactl

# experiments regenerates every table in EXPERIMENTS.md on stdout.
experiments:
	$(GO) run ./cmd/benchrunner

# fuzz-smoke runs each native fuzz target briefly (FUZZTIME per target) —
# a coverage-guided shakeout of the erasure-code math, not a soak.
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz '^FuzzGF256$$' -fuzztime $(FUZZTIME) ./internal/raid
	$(GO) test -run '^$$' -fuzz '^FuzzReconstruct$$' -fuzztime $(FUZZTIME) ./internal/raid
