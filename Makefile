GO ?= go

.PHONY: all build vet test race verify bench snapshot experiments

all: verify

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race -short ./...

# verify is the tier-1 gate: everything a PR must keep green.
verify: build vet test race

bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' .

# snapshot writes the per-PR perf record (per-phase p50/p99 + throughput).
snapshot:
	$(GO) run ./cmd/benchrunner -snapshot BENCH_PR3.json

# experiments regenerates every table in EXPERIMENTS.md on stdout.
experiments:
	$(GO) run ./cmd/benchrunner
