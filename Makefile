GO ?= go
FUZZTIME ?= 10s

.PHONY: all build vet test race verify bench snapshot experiments fuzz-smoke qos-smoke

all: verify

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race -short ./...

# verify is the tier-1 gate: everything a PR must keep green.
verify: build vet test race

bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' .

# snapshot writes the per-PR perf record (per-phase p50/p99 + throughput,
# plus the E12 balance and E13 QoS summaries).
snapshot:
	$(GO) run ./cmd/benchrunner -snapshot BENCH_PR5.json

# qos-smoke runs the reduced-scale multi-tenant isolation experiment —
# the CI gate that admission control and fair queueing still isolate.
qos-smoke:
	$(GO) run ./cmd/benchrunner -only E13Q

# experiments regenerates every table in EXPERIMENTS.md on stdout.
experiments:
	$(GO) run ./cmd/benchrunner

# fuzz-smoke runs each native fuzz target briefly (FUZZTIME per target) —
# a coverage-guided shakeout of the erasure-code math, not a soak.
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz '^FuzzGF256$$' -fuzztime $(FUZZTIME) ./internal/raid
	$(GO) test -run '^$$' -fuzz '^FuzzReconstruct$$' -fuzztime $(FUZZTIME) ./internal/raid
