GO ?= go
FUZZTIME ?= 10s

.PHONY: all build vet test race verify bench snapshot experiments fuzz-smoke qos-smoke batch-smoke governor-smoke analyze-smoke cache-smoke gateway-smoke bench-check

all: verify

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test -timeout 20m ./...

race:
	$(GO) test -race -short ./...

# verify is the tier-1 gate: everything a PR must keep green.
verify: build vet test race

bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' .

# snapshot writes the per-PR perf record: the canonical workload run
# unbatched and on the batched fabric plane (per-phase p50/p99 +
# throughput, the critical-path latency budget, plus the E12 balance,
# E13 QoS, E14 governor, E15 cache-tier and E16 gateway summaries),
# diffed against the previous PR's committed record.
snapshot:
	$(GO) run ./cmd/benchrunner -snapshot BENCH_PR10.json

# bench-check regenerates the snapshot into a scratch file and diffs it
# against the committed BENCH_PR10.json: a fabric p99 regression over 10%
# on either plane, an E14 PI victim p99 regression over 10%, an E15Q
# shifting-skew hotcache op p99 regression over 10%, an E16Q sharded
# gateway ceiling drop over 10%, or any phase's tail critical-path share
# growing over 5 points fails loudly.
bench-check:
	$(GO) run ./cmd/benchrunner -snapshot /tmp/bench_check.json -baseline BENCH_PR10.json

# qos-smoke runs the reduced-scale multi-tenant isolation experiment —
# the CI gate that admission control and fair queueing still isolate.
qos-smoke:
	$(GO) run ./cmd/benchrunner -only E13Q

# governor-smoke runs the reduced-scale governor step-response A/B: the
# per-tenant PI controller against the legacy halve/double law under
# identical step and burst aggressors.
governor-smoke:
	$(GO) run ./cmd/benchrunner -only E14Q

# cache-smoke runs the reduced-scale cache-tier crossover: the hot-key
# cache tier vs home migration vs no rebalancing under uniform, static-
# Zipf and fast-shifting-Zipf load, all from one seed.
cache-smoke:
	$(GO) run ./cmd/benchrunner -only E15Q

# gateway-smoke runs the reduced-scale object-gateway shard-scaling
# sweep: closed-loop clients against 1 vs 4 metadata shards, asserting
# the linear region, the single-shard ceiling and the sharded lift via
# the E16 test suite's quick arm.
gateway-smoke:
	$(GO) run ./cmd/benchrunner -only E16Q

# analyze-smoke is the CI gate for critical-path attribution: the
# attribution identities (wall = Σ critical; inclusive = critical +
# delegated + overlap) reconcile against the tracer's own breakdown on
# the canonical workload, same-seed output is byte-identical, cap
# eviction surfaces as counted truncation, and the yottactl
# analyze/critpath commands and -baseline tail-share gate behave.
analyze-smoke:
	$(GO) test -count=1 ./internal/critpath
	$(GO) test -count=1 -run 'TestCritPath|TestCheckCritPath|TestAnalyze|TestCritpath|TestDroppedTrace|TestExemplar|TestPhaseHistogramCarriesExemplars|TestChromeFlowEvents|TestRegistryExemplarFor' ./internal/experiments ./internal/trace ./internal/metrics ./internal/telemetry ./cmd/yottactl ./cmd/benchrunner

# batch-smoke is the CI gate for the batched fabric plane: frame
# coalescing semantics, the batched/unbatched convergence property, and
# the yottactl batch toggle.
batch-smoke:
	$(GO) test -count=1 -run 'TestFrame|TestBatch|TestSetBatchingOffFlushes|TestGoPropagates|TestDup|TestRetryCounter' ./internal/simnet ./internal/coherence ./cmd/yottactl

# experiments regenerates every table in EXPERIMENTS.md on stdout.
experiments:
	$(GO) run ./cmd/benchrunner

# fuzz-smoke runs each native fuzz target briefly (FUZZTIME per target) —
# a coverage-guided shakeout of the erasure-code math and the cache
# tier's routing algebra, not a soak.
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz '^FuzzGF256$$' -fuzztime $(FUZZTIME) ./internal/raid
	$(GO) test -run '^$$' -fuzz '^FuzzReconstruct$$' -fuzztime $(FUZZTIME) ./internal/raid
	$(GO) test -run '^$$' -fuzz '^FuzzHotcacheRouting$$' -fuzztime $(FUZZTIME) ./internal/hotcache
	$(GO) test -run '^$$' -fuzz '^FuzzObjectLayout$$' -fuzztime $(FUZZTIME) ./internal/gateway
