// Command multitenant demonstrates Figure 2: many user groups sharing one
// pool with LUN masking, token authentication, at-rest encryption, in-band
// control lockdown, and an audit trail of the blocked intruder.
package main

import (
	"bytes"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/security"
	"repro/internal/sim"
)

func main() {
	sys, err := core.NewSystem(core.Options{EncryptAtRest: true})
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Stop()

	fmt.Println("== Figure 2: secure shared pool ==")

	// Two research groups, each with a private LUN in the common pool.
	for _, tenant := range []string{"fusion", "genomics"} {
		if _, err := sys.Auth.CreateTenant(tenant); err != nil {
			log.Fatal(err)
		}
		vol := tenant + "-vol"
		if _, err := sys.Cluster.CreateDMSD("default", vol, 1024); err != nil {
			log.Fatal(err)
		}
		sys.BlockGateway.ExportLUN(tenant+"-lun", vol)
		sys.Mask.Allow(tenant+"-lun", tenant, security.ReadWrite)
	}
	fusionTok, _ := sys.Auth.Issue("fusion", 3600*sim.Second)
	genomicsTok, _ := sys.Auth.Issue("genomics", 3600*sim.Second)

	// Dangerous control verbs are disabled on the data path (§5.2).
	sys.BlockGateway.DisableInBand("volume.delete")

	err = sys.Run(0, func(p *sim.Proc) error {
		secret := bytes.Repeat([]byte("plasma"), 1000)[:4096]

		// Fusion stores data; it comes back intact through encryption.
		if err := sys.BlockGateway.Write(p, fusionTok, "fusion-lun", 0, secret, 0, 0); err != nil {
			return err
		}
		got, err := sys.BlockGateway.Read(p, fusionTok, "fusion-lun", 0, 1, 0)
		if err != nil {
			return err
		}
		fmt.Printf("fusion round trip ok: %v\n", bytes.Equal(got, secret))

		// Each tenant sees only its own LUN.
		vis, _ := sys.BlockGateway.Visible(fusionTok)
		fmt.Printf("fusion sees LUNs: %v\n", vis)

		// Genomics probing fusion's LUN is denied and audited.
		if _, err := sys.BlockGateway.Read(p, genomicsTok, "fusion-lun", 0, 1, 0); err != nil {
			fmt.Printf("cross-tenant read denied: %v\n", err)
		}

		// Even with the ACL circumvented, the at-rest bytes are
		// ciphertext under fusion's key (§5.1): read the raw volume.
		raw, err := sys.Cluster.ReadBlocks(p, "fusion-vol", 0, 1, 0)
		if err != nil {
			return err
		}
		fmt.Printf("raw pool bytes equal plaintext: %v (a stolen disk reveals nothing)\n",
			bytes.Equal(raw, secret))

		// In-band control lockdown.
		err = sys.BlockGateway.Control(fusionTok, "volume.delete", true, func() error { return nil })
		fmt.Printf("in-band volume.delete: %v\n", err)
		err = sys.BlockGateway.Control(fusionTok, "volume.delete", false, func() error { return nil })
		fmt.Printf("out-of-band volume.delete: allowed (err=%v)\n", err)
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\naudit trail of denials:")
	for _, e := range sys.Auth.Denials() {
		fmt.Printf("  t=%v tenant=%q action=%s target=%s detail=%q\n",
			e.At, e.Tenant, e.Action, e.Target, e.Detail)
	}
}
