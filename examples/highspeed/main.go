// Command highspeed reproduces Figure 1 interactively: a single large read
// striped round-robin over controller blades, each fed by two 2 Gb/s Fibre
// Channel links, driving one 10 Gb/s port.
package main

import (
	"fmt"
	"log"

	"repro/internal/sim"
	"repro/internal/stripe"
)

func main() {
	fmt.Println("== Figure 1: driving a 10 Gb/s link by striping over blades ==")
	const gib = int64(1) << 30
	counts := []int{1, 2, 4, 8}
	k := sim.NewKernel(1)
	results, err := stripe.Sweep(k, stripe.Config{}, counts, gib)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(stripe.Table(counts, results, 2_000_000_000, 10_000_000_000))

	fmt.Println("\nWith per-blade 2 Gb/s encryption engines (§8.1):")
	k2 := sim.NewKernel(1)
	enc, err := stripe.Sweep(k2, stripe.Config{EncBps: 2_000_000_000}, counts, gib)
	if err != nil {
		log.Fatal(err)
	}
	for i, n := range counts {
		fmt.Printf("  %d blade(s): %.2f Gb/s encrypted (vs %.2f plain)\n",
			n, enc[i].Gbps(), results[i].Gbps())
	}
	fmt.Println("\nfour blades saturate the port; encryption reaches wire speed by parallelism")
}
