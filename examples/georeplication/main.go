// Command georeplication demonstrates Figure 3: two data centers managed
// as one image. A file written at site A is read at site B (first touch
// over the WAN, the rest prefetched), key files replicate synchronously,
// bulk files asynchronously, and a site disaster fails over with the
// expected loss windows.
package main

import (
	"bytes"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/georepl"
	"repro/internal/pfs"
	"repro/internal/sim"
)

func main() {
	gs, err := core.NewGeoSystem(1, core.GeoOptions{
		Sites:     []string{"argonne", "berkeley"},
		WANOneWay: 30 * sim.Millisecond, // ~continental distance
		Geo:       georepl.Config{PrefetchBytes: 256 << 10, HotThreshold: 3},
		SiteOptions: func(string) core.Options {
			return core.Options{Blades: 4}
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer gs.Stop()

	fmt.Println("== Figure 3: two sites, one data image (30 ms one-way WAN) ==")
	err = gs.Run(0, func(p *sim.Proc) error {
		a := gs.Site("argonne")
		b := gs.Site("berkeley")

		// A large dataset produced at Argonne.
		data := make([]byte, 256<<10)
		for i := range data {
			data[i] = byte(i * 7)
		}
		if err := a.Create(p, "/runs/run42.h5", pfs.Policy{}); err != nil {
			return err
		}
		if err := a.WriteAt(p, "/runs/run42.h5", 0, data); err != nil {
			return err
		}

		// Berkeley reads it: first block pays the WAN, the rest is local.
		buf := make([]byte, 16<<10)
		for i := 0; i < 4; i++ {
			off := int64(i) * int64(len(buf))
			t0 := p.Now()
			if _, err := b.ReadAt(p, "/runs/run42.h5", off, buf); err != nil {
				return err
			}
			if !bytes.Equal(buf, data[off:off+int64(len(buf))]) {
				return fmt.Errorf("data mismatch at read %d", i)
			}
			fmt.Printf("  berkeley read %2d: %8.2f ms\n", i+1, p.Now().Sub(t0).Millis())
		}
		fmt.Printf("  berkeley stats: %d WAN fetch, %d prefetched, %d promotions\n",
			b.Stats.RemoteReads, b.Stats.PrefetchHits, b.Stats.Promotions)

		// Per-file replication policy (§7.2): the key database log is
		// synchronous; bulk output is asynchronous.
		keyPol := pfs.Policy{Geo: pfs.GeoPolicy{Mode: pfs.GeoSync, Sites: []string{"berkeley"}}}
		bulkPol := pfs.Policy{Geo: pfs.GeoPolicy{Mode: pfs.GeoAsync, Sites: []string{"berkeley"}}}
		a.Create(p, "/db/wal", keyPol)
		a.Create(p, "/bulk/frames", bulkPol)

		block := make([]byte, 4096)
		t0 := p.Now()
		a.WriteAt(p, "/db/wal", 0, block)
		fmt.Printf("  sync write:  %6.2f ms (waits for the WAN round trip)\n", p.Now().Sub(t0).Millis())
		t1 := p.Now()
		a.WriteAt(p, "/bulk/frames", 0, block)
		fmt.Printf("  async write: %6.2f ms (journal ships in the background)\n", p.Now().Sub(t1).Millis())

		// Disaster: Argonne goes dark before the async journal drains.
		gs.Fed.FailSite("argonne")
		recovered, lost := gs.Fed.Failover("argonne")
		fmt.Printf("  site disaster: %d files recovered at berkeley, %d lost entirely\n", recovered, lost)
		if _, err := b.FS().Stat("/db/wal"); err == nil {
			fmt.Println("  /db/wal (sync) survived with zero data loss")
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
}
