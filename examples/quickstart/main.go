// Command quickstart builds a four-blade storage system, provisions a
// demand-mapped device, and works with files through the parallel file
// system — the smallest end-to-end tour of the public API.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/pfs"
	"repro/internal/sim"
)

func main() {
	sys, err := core.NewSystem(core.Options{
		Blades:       4,
		ReplicationN: 2,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Stop()

	fmt.Println("== quickstart: one shared storage pool for the whole lab ==")
	fmt.Printf("blades: %d, disks: %d, raw capacity: %s\n",
		len(sys.Cluster.Blades), len(sys.Cluster.Farm.Disks),
		metrics.FormatBytes(sys.Cluster.Farm.TotalBytes()))

	err = sys.Run(0, func(p *sim.Proc) error {
		// A project directory with a per-file policy: high cache
		// retention and 3-way write replication for the important file.
		if err := sys.FS.MkdirAll("/projects/climate"); err != nil {
			return err
		}
		important := pfs.Policy{CachePriority: 3, ReplicationN: 3}
		if err := sys.FS.WriteFile(p, "/projects/climate/model.bin",
			[]byte("global circulation model state"), important); err != nil {
			return err
		}
		if err := sys.FS.WriteFile(p, "/projects/climate/notes.txt",
			[]byte("scratch notes"), pfs.Policy{}); err != nil {
			return err
		}

		data, err := sys.FS.ReadFile(p, "/projects/climate/model.bin")
		if err != nil {
			return err
		}
		fmt.Printf("read back %d bytes at t=%v\n", len(data), p.Now())

		names, err := sys.FS.List("/projects/climate")
		if err != nil {
			return err
		}
		fmt.Printf("directory listing: %v\n", names)

		// The pool is thin: physical use reflects what was written.
		pool := sys.Cluster.Pool
		fmt.Printf("pool: %s physically allocated of %s raw (thin provisioning)\n",
			metrics.FormatBytes(pool.AllocatedBytes()),
			metrics.FormatBytes(pool.TotalExtents()*pool.ExtentBytes()))
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}

	// Every blade can serve every byte: read the same file through each.
	err = sys.Run(0, func(p *sim.Proc) error {
		for _, b := range sys.Cluster.Blades {
			if _, err := sys.Cluster.Read(p, b, "fs.default", 0, 1, 0); err != nil {
				return fmt.Errorf("blade %d: %w", b.ID, err)
			}
		}
		fmt.Println("all blades served the same block — one coherent pool")
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
}
